#include "workloads/spec.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace hcc::workloads {

// Defined in the per-suite translation units.
void registerPolybench();
void registerRodinia();
void registerGraphSuites();
void registerMlApps();

void
ensureSuitesRegistered()
{
    // A recursive mutex: registration paths re-enter here on the
    // same thread (each suite's register function touches the
    // registry), while the lock keeps a second sweep worker from
    // racing the first caller's registration.
    static std::recursive_mutex mutex;
    static bool done = false;
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    if (done)
        return;
    done = true;  // set first: registration paths re-enter here
    registerPolybench();
    registerRodinia();
    registerGraphSuites();
    registerMlApps();
}

Bytes
AppSpec::totalInputBytes() const
{
    return std::accumulate(inputs.begin(), inputs.end(), Bytes{0});
}

Bytes
AppSpec::totalOutputBytes() const
{
    return std::accumulate(outputs.begin(), outputs.end(), Bytes{0});
}

int
AppSpec::totalLaunches() const
{
    int n = 0;
    for (const auto &p : phases)
        n += p.launches;
    return n;
}

SpecWorkload::SpecWorkload(AppSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.name.empty() || spec_.phases.empty())
        fatal("app spec needs a name and at least one phase");
}

namespace {

Bytes
scaled(Bytes bytes, double scale)
{
    return static_cast<Bytes>(static_cast<double>(bytes) * scale);
}

SimTime
scaledTime(SimTime t, double scale)
{
    return static_cast<SimTime>(static_cast<double>(t) * scale);
}

/** Deterministic KET jitter, identical across base and CC runs. */
Rng
ketRng(const AppSpec &spec, const WorkloadParams &params)
{
    const std::uint64_t h =
        std::hash<std::string>{}(spec.name) ^ params.seed;
    return Rng(h, 0x4b45544a49545231ULL);
}

} // namespace

void
SpecWorkload::run(rt::Context &ctx, const WorkloadParams &params) const
{
    if (params.uvm) {
        if (!spec_.uvm_capable)
            fatal("workload '%s' has no UVM variant",
                  spec_.name.c_str());
        runUvm(ctx, params);
    } else {
        runExplicit(ctx, params);
    }
}

void
SpecWorkload::runExplicit(rt::Context &ctx,
                          const WorkloadParams &params) const
{
    Rng rng = ketRng(spec_, params);

    // Allocate host and device buffers.
    std::vector<rt::Buffer> host_in, host_out, dev_in, dev_out;
    for (Bytes b : spec_.inputs) {
        const Bytes n = scaled(b, params.scale);
        host_in.push_back(spec_.pinned_host ? ctx.mallocHost(n)
                                            : ctx.hostPageable(n));
        dev_in.push_back(ctx.mallocDevice(n));
    }
    for (Bytes b : spec_.outputs) {
        const Bytes n = scaled(b, params.scale);
        host_out.push_back(spec_.pinned_host ? ctx.mallocHost(n)
                                             : ctx.hostPageable(n));
        dev_out.push_back(ctx.mallocDevice(n));
    }
    rt::Buffer scratch;
    if (spec_.scratch > 0)
        scratch = ctx.mallocDevice(scaled(spec_.scratch, params.scale));

    // Per-iteration readback staging, if any phase needs it.
    Bytes iter_bytes = 0;
    for (const auto &p : spec_.phases)
        iter_bytes = std::max(iter_bytes, p.d2h_per_iter);
    rt::Buffer iter_dev, iter_host;
    if (iter_bytes > 0) {
        iter_dev = ctx.mallocDevice(iter_bytes);
        iter_host = spec_.pinned_host ? ctx.mallocHost(iter_bytes)
                                      : ctx.hostPageable(iter_bytes);
    }

    // Copy-then-execute: H2D inputs, optional D2D shuffles.
    for (std::size_t i = 0; i < dev_in.size(); ++i)
        ctx.memcpy(dev_in[i], host_in[i], dev_in[i].bytes);
    std::vector<rt::Buffer> d2d_bufs;
    for (Bytes b : spec_.d2d_copies) {
        const Bytes n = scaled(b, params.scale);
        auto src = ctx.mallocDevice(n);
        auto dst = ctx.mallocDevice(n);
        ctx.memcpy(dst, src, n);
        d2d_bufs.push_back(src);
        d2d_bufs.push_back(dst);
    }

    // Kernel phases.
    for (const auto &phase : spec_.phases) {
        for (int i = 0; i < phase.launches; ++i) {
            gpu::KernelDesc k;
            k.name = phase.kernel;
            k.module_bytes = phase.module_bytes;
            if (phase.ket > 0) {
                k.duration = static_cast<SimTime>(rng.lognormal(
                    static_cast<double>(
                        scaledTime(phase.ket, params.scale)),
                    phase.jitter_sigma));
            } else {
                // Roofline phase: scale work, derive duration on
                // the device.
                k.gflops = phase.gflops * params.scale;
                k.mem_bytes = scaled(phase.mem_bytes, params.scale);
                k.dims.grid_x = static_cast<int>(
                    phase.threads / 256);
                k.dims.block_x = 256;
            }
            ctx.launchKernel(k);
            if (phase.d2h_per_iter > 0) {
                ctx.memcpy(iter_host, iter_dev, phase.d2h_per_iter);
            }
        }
        if (phase.sync_after)
            ctx.deviceSynchronize();
    }
    ctx.deviceSynchronize();

    // Results home, then teardown.
    for (std::size_t i = 0; i < dev_out.size(); ++i)
        ctx.memcpy(host_out[i], dev_out[i], dev_out[i].bytes);
    for (auto &b : dev_in)
        ctx.free(b);
    for (auto &b : dev_out)
        ctx.free(b);
    for (auto &b : d2d_bufs)
        ctx.free(b);
    if (scratch.valid())
        ctx.free(scratch);
    if (iter_dev.valid())
        ctx.free(iter_dev);
    if (iter_host.valid())
        ctx.free(iter_host);
    for (auto &b : host_in)
        ctx.free(b);
    for (auto &b : host_out)
        ctx.free(b);
}

void
SpecWorkload::runUvm(rt::Context &ctx,
                     const WorkloadParams &params) const
{
    Rng rng = ketRng(spec_, params);

    // One managed region covers inputs + outputs; pages fault over on
    // first kernel touch instead of explicit copies.
    const Bytes data_bytes = scaled(
        spec_.totalInputBytes() + spec_.totalOutputBytes(),
        params.scale);
    auto managed = ctx.mallocManaged(std::max<Bytes>(data_bytes, 4096));
    rt::Buffer scratch;
    if (spec_.scratch > 0)
        scratch = ctx.mallocDevice(scaled(spec_.scratch, params.scale));

    const Bytes touch = spec_.uvm_touch_override > 0
        ? scaled(spec_.uvm_touch_override, params.scale)
        : scaled(spec_.totalInputBytes(), params.scale);

    for (const auto &phase : spec_.phases) {
        for (int i = 0; i < phase.launches; ++i) {
            gpu::KernelDesc k;
            k.name = phase.kernel;
            k.module_bytes = phase.module_bytes;
            if (phase.ket > 0) {
                k.duration = static_cast<SimTime>(rng.lognormal(
                    static_cast<double>(
                        scaledTime(phase.ket, params.scale)),
                    phase.jitter_sigma));
            } else {
                k.gflops = phase.gflops * params.scale;
                k.mem_bytes = scaled(phase.mem_bytes, params.scale);
                k.dims.grid_x = static_cast<int>(
                    phase.threads / 256);
                k.dims.block_x = 256;
            }
            k.uvm_alloc = managed.uvm_handle;
            k.uvm_touch_bytes = std::min(touch, managed.bytes);
            ctx.launchKernel(k);
        }
        if (phase.sync_after)
            ctx.deviceSynchronize();
    }
    ctx.deviceSynchronize();

    if (scratch.valid())
        ctx.free(scratch);
    ctx.free(managed);
}

void
registerSpec(AppSpec spec)
{
    WorkloadRegistry::instance().add(
        std::make_unique<SpecWorkload>(std::move(spec)));
}

} // namespace hcc::workloads
