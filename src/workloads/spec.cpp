#include "workloads/spec.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace hcc::workloads {

// Defined in the per-suite translation units.
void registerPolybench();
void registerRodinia();
void registerGraphSuites();
void registerMlApps();
void registerTransferApps();

void
ensureSuitesRegistered()
{
    // A recursive mutex: registration paths re-enter here on the
    // same thread (each suite's register function touches the
    // registry), while the lock keeps a second sweep worker from
    // racing the first caller's registration.
    static std::recursive_mutex mutex;
    static bool done = false;
    const std::lock_guard<std::recursive_mutex> lock(mutex);
    if (done)
        return;
    done = true;  // set first: registration paths re-enter here
    registerPolybench();
    registerRodinia();
    registerGraphSuites();
    registerMlApps();
    registerTransferApps();
}

Bytes
AppSpec::totalInputBytes() const
{
    return std::accumulate(inputs.begin(), inputs.end(), Bytes{0});
}

Bytes
AppSpec::totalOutputBytes() const
{
    return std::accumulate(outputs.begin(), outputs.end(), Bytes{0});
}

int
AppSpec::totalLaunches() const
{
    int n = 0;
    for (const auto &p : phases)
        n += p.launches;
    return n;
}

SpecWorkload::SpecWorkload(AppSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.name.empty() || spec_.phases.empty())
        fatal("app spec needs a name and at least one phase");
}

namespace {

Bytes
scaled(Bytes bytes, double scale)
{
    return static_cast<Bytes>(static_cast<double>(bytes) * scale);
}

SimTime
scaledTime(SimTime t, double scale)
{
    return static_cast<SimTime>(static_cast<double>(t) * scale);
}

/** Deterministic KET jitter, identical across base and CC runs. */
Rng
ketRng(const AppSpec &spec, const WorkloadParams &params)
{
    const std::uint64_t h =
        std::hash<std::string>{}(spec.name) ^ params.seed;
    return Rng(h, 0x4b45544a49545231ULL);
}

} // namespace

/**
 * Workload state crossing the prefix/suffix cut: buffer handles, the
 * KET jitter stream position and the launch cursor.  Buffer handles
 * are plain ids into the Context's allocation map, which the
 * snapshot restores, so a Resume captured against one Context state
 * replays against every cell restored from it.
 */
struct SpecWorkload::SpecResume final : Workload::Resume
{
    bool uvm = false;
    Rng rng{0, 0};
    std::vector<rt::Buffer> host_in, host_out, dev_in, dev_out;
    std::vector<rt::Buffer> d2d_bufs;
    rt::Buffer scratch, iter_dev, iter_host;
    rt::Buffer managed;
    /** Managed bytes each kernel touches (UVM mode). */
    Bytes touch = 0;
    /** Ordinal of the next launch to issue. */
    int next_launch = 0;
};

SpecWorkload::SpecResume
SpecWorkload::setup(rt::Context &ctx,
                    const WorkloadParams &params) const
{
    SpecResume st;
    st.uvm = params.uvm;
    st.rng = ketRng(spec_, params);

    if (params.uvm) {
        // One managed region covers inputs + outputs; pages fault
        // over on first kernel touch instead of explicit copies.
        const Bytes data_bytes = scaled(
            spec_.totalInputBytes() + spec_.totalOutputBytes(),
            params.scale);
        st.managed =
            ctx.mallocManaged(std::max<Bytes>(data_bytes, 4096));
        if (spec_.scratch > 0)
            st.scratch =
                ctx.mallocDevice(scaled(spec_.scratch, params.scale));
        st.touch = spec_.uvm_touch_override > 0
            ? scaled(spec_.uvm_touch_override, params.scale)
            : scaled(spec_.totalInputBytes(), params.scale);
        return st;
    }

    // Allocate host and device buffers.
    for (Bytes b : spec_.inputs) {
        const Bytes n = scaled(b, params.scale);
        st.host_in.push_back(spec_.pinned_host
                                 ? ctx.mallocHost(n)
                                 : ctx.hostPageable(n));
        st.dev_in.push_back(ctx.mallocDevice(n));
    }
    for (Bytes b : spec_.outputs) {
        const Bytes n = scaled(b, params.scale);
        st.host_out.push_back(spec_.pinned_host
                                  ? ctx.mallocHost(n)
                                  : ctx.hostPageable(n));
        st.dev_out.push_back(ctx.mallocDevice(n));
    }
    if (spec_.scratch > 0)
        st.scratch =
            ctx.mallocDevice(scaled(spec_.scratch, params.scale));

    // Per-iteration streaming/readback staging, if any phase needs
    // it (one buffer serves both directions).
    Bytes iter_bytes = 0;
    for (const auto &p : spec_.phases)
        iter_bytes = std::max({iter_bytes, p.d2h_per_iter,
                               p.h2d_per_iter});
    if (iter_bytes > 0) {
        st.iter_dev = ctx.mallocDevice(iter_bytes);
        st.iter_host = spec_.pinned_host
            ? ctx.mallocHost(iter_bytes)
            : ctx.hostPageable(iter_bytes);
    }

    // Copy-then-execute: H2D inputs, optional D2D shuffles.
    for (std::size_t i = 0; i < st.dev_in.size(); ++i)
        ctx.memcpy(st.dev_in[i], st.host_in[i], st.dev_in[i].bytes);
    for (Bytes b : spec_.d2d_copies) {
        const Bytes n = scaled(b, params.scale);
        auto src = ctx.mallocDevice(n);
        auto dst = ctx.mallocDevice(n);
        ctx.memcpy(dst, src, n);
        st.d2d_bufs.push_back(src);
        st.d2d_bufs.push_back(dst);
    }
    return st;
}

void
SpecWorkload::runLaunchRange(rt::Context &ctx,
                             const WorkloadParams &params,
                             SpecResume &st, int to_launch) const
{
    const int from = st.next_launch;
    int ordinal = 0;
    for (const auto &phase : spec_.phases) {
        const int phase_end = ordinal + phase.launches;
        for (int i = 0; i < phase.launches; ++i, ++ordinal) {
            if (ordinal < from || ordinal >= to_launch)
                continue;
            gpu::KernelDesc k;
            k.name = phase.kernel;
            k.module_bytes = phase.module_bytes;
            if (phase.ket > 0) {
                k.duration = static_cast<SimTime>(st.rng.lognormal(
                    static_cast<double>(
                        scaledTime(phase.ket, params.scale)),
                    phase.jitter_sigma));
            } else {
                // Roofline phase: scale work, derive duration on
                // the device.
                k.gflops = phase.gflops * params.scale;
                k.mem_bytes = scaled(phase.mem_bytes, params.scale);
                k.dims.grid_x = static_cast<int>(
                    phase.threads / 256);
                k.dims.block_x = 256;
            }
            if (st.uvm) {
                k.uvm_alloc = st.managed.uvm_handle;
                k.uvm_touch_bytes =
                    std::min(st.touch, st.managed.bytes);
            }
            if (!st.uvm && phase.h2d_per_iter > 0) {
                ctx.memcpy(st.iter_dev, st.iter_host,
                           phase.h2d_per_iter);
            }
            ctx.launchKernel(k);
            if (!st.uvm && phase.d2h_per_iter > 0) {
                ctx.memcpy(st.iter_host, st.iter_dev,
                           phase.d2h_per_iter);
            }
        }
        // The phase barrier belongs to whichever range completed the
        // phase, so any split replays it exactly once.
        if (phase.sync_after && phase_end > from
            && phase_end <= to_launch)
            ctx.deviceSynchronize();
    }
    st.next_launch = std::min(to_launch, spec_.totalLaunches());
}

void
SpecWorkload::teardown(rt::Context &ctx, SpecResume &st) const
{
    ctx.deviceSynchronize();

    if (st.uvm) {
        if (st.scratch.valid())
            ctx.free(st.scratch);
        ctx.free(st.managed);
        return;
    }

    // Results home, then teardown.
    for (std::size_t i = 0; i < st.dev_out.size(); ++i)
        ctx.memcpy(st.host_out[i], st.dev_out[i],
                   st.dev_out[i].bytes);
    for (auto &b : st.dev_in)
        ctx.free(b);
    for (auto &b : st.dev_out)
        ctx.free(b);
    for (auto &b : st.d2d_bufs)
        ctx.free(b);
    if (st.scratch.valid())
        ctx.free(st.scratch);
    if (st.iter_dev.valid())
        ctx.free(st.iter_dev);
    if (st.iter_host.valid())
        ctx.free(st.iter_host);
    for (auto &b : st.host_in)
        ctx.free(b);
    for (auto &b : st.host_out)
        ctx.free(b);
}

void
SpecWorkload::run(rt::Context &ctx, const WorkloadParams &params) const
{
    if (params.uvm && !spec_.uvm_capable)
        fatal("workload '%s' has no UVM variant", spec_.name.c_str());
    SpecResume st = setup(ctx, params);
    runLaunchRange(ctx, params, st, spec_.totalLaunches());
    teardown(ctx, st);
}

std::unique_ptr<Workload::Resume>
SpecWorkload::runPrefix(rt::Context &ctx, const WorkloadParams &params,
                        double fraction) const
{
    if (params.uvm && !spec_.uvm_capable)
        fatal("workload '%s' has no UVM variant", spec_.name.c_str());
    const double f = std::clamp(fraction, 0.0, 1.0);
    const int warm = static_cast<int>(
        static_cast<double>(spec_.totalLaunches()) * f);
    auto st = std::make_unique<SpecResume>(setup(ctx, params));
    runLaunchRange(ctx, params, *st, warm);
    return st;
}

void
SpecWorkload::runSuffix(rt::Context &ctx, const WorkloadParams &params,
                        const Resume &resume) const
{
    const auto *spec_resume =
        dynamic_cast<const SpecResume *>(&resume);
    if (!spec_resume)
        fatal("runSuffix got a foreign resume state");
    SpecResume st = *spec_resume;  // each cell replays its own copy
    runLaunchRange(ctx, params, st, spec_.totalLaunches());
    teardown(ctx, st);
}

std::unique_ptr<Workload::Resume>
SpecWorkload::runSegment(rt::Context &ctx,
                         const WorkloadParams &params,
                         const Resume &from, double to_fraction) const
{
    const auto *spec_resume = dynamic_cast<const SpecResume *>(&from);
    if (!spec_resume)
        fatal("runSegment got a foreign resume state");
    // Same rounding as runPrefix, so an increasing cut path tiles
    // the launch schedule without gaps or overlaps.
    const double f = std::clamp(to_fraction, 0.0, 1.0);
    const int to_launch = static_cast<int>(
        static_cast<double>(spec_.totalLaunches()) * f);
    auto st = std::make_unique<SpecResume>(*spec_resume);
    runLaunchRange(ctx, params, *st, to_launch);
    return st;
}

std::unique_ptr<Workload::Resume>
SpecWorkload::reseedResume(const Resume &resume,
                           const WorkloadParams &params) const
{
    const auto *spec_resume =
        dynamic_cast<const SpecResume *>(&resume);
    if (!spec_resume)
        fatal("reseedResume got a foreign resume state");
    auto st = std::make_unique<SpecResume>(*spec_resume);
    // Exactly what setup() under params.seed would have derived; the
    // position state (buffers, launch cursor) carries over as-is.
    st->rng = ketRng(spec_, params);
    return st;
}

void
registerSpec(AppSpec spec)
{
    WorkloadRegistry::instance().add(
        std::make_unique<SpecWorkload>(std::move(spec)));
}

} // namespace hcc::workloads
