/**
 * @file
 * The Session interface: one workload instance driven step by step.
 *
 * Three engines advance workloads incrementally — the campaign fork
 * engine replays suffixes from snapshots, the snapshot TreeRunner
 * materializes chained cuts, and the continuous-batching scheduler
 * (serve/) interleaves thousands of request sessions.  Before this
 * interface each engine spoke a per-workload split-phase trio
 * (llmServePrefix/Segment/Finish, cnnTrainPrefix/...) directly;
 * Session unifies the trios behind one step-cursor API, and
 * SessionWorkload adapts any Session-shaped workload onto the
 * registry's fraction-based split-phase protocol (workload.hpp).
 *
 * Lifecycle:  open() issues the setup prefix (allocations, input
 * transfers, warm-up/prefill); advance(to) issues steady-state steps
 * [cursor, to); finish() issues any remaining steps plus the result
 * computation and frees.  open -> advance* -> finish on one Context
 * issues the identical API call sequence regardless of how the steps
 * are grouped.  clone() copies the session state (a value: buffer
 * handles and cursors, not live resources), which is what makes a
 * Session usable as an immutable fork-point Resume — the tree node
 * clones before advancing, so the original keeps describing the cut.
 */

#ifndef HCC_WORKLOADS_SESSION_HPP
#define HCC_WORKLOADS_SESSION_HPP

#include <memory>

#include "workloads/workload.hpp"

namespace hcc::workloads {

/** One incrementally-advanced workload instance. */
class Session
{
  public:
    virtual ~Session() = default;

    /** Steady-state steps between open() and completion. */
    virtual int totalSteps() const = 0;

    /** Steps already advanced (0 right after open()). */
    virtual int cursor() const = 0;

    /** Setup prefix: allocations, ingress, warm-up/prefill. */
    virtual void open(rt::Context &ctx) = 0;

    /** Advance to step @p to_step (no-op when already there). */
    virtual void advance(rt::Context &ctx, int to_step) = 0;

    /** Remaining steps, result computation and frees. */
    virtual void finish(rt::Context &ctx) = 0;

    /** Value copy of the session state (see file comment). */
    virtual std::unique_ptr<Session> clone() const = 0;
};

/**
 * Registry adapter: implements the Workload split-phase protocol on
 * top of makeSession(), so a workload written as a Session is
 * automatically forkable with the identical-call-sequence contract
 * satisfied by construction.
 */
class SessionWorkload : public Workload
{
  public:
    /** Build a fresh (unopened) session for @p params. */
    virtual std::unique_ptr<Session>
    makeSession(const WorkloadParams &params) const = 0;

    bool forkable() const override { return true; }

    /** The step a fraction-based cut lands on: the same rounding for
     *  every engine, so chained cuts tile without gaps. */
    static int stepAtFraction(double fraction, int total_steps);

    void run(rt::Context &ctx,
             const WorkloadParams &params) const override;

    std::unique_ptr<Resume>
    runPrefix(rt::Context &ctx, const WorkloadParams &params,
              double fraction) const override;

    void runSuffix(rt::Context &ctx, const WorkloadParams &params,
                   const Resume &resume) const override;

    std::unique_ptr<Resume>
    runSegment(rt::Context &ctx, const WorkloadParams &params,
               const Resume &from, double to_fraction) const override;

  private:
    struct SessionResume final : Resume
    {
        std::unique_ptr<Session> session;
    };

    static const Session &sessionOf(const Resume &resume);
};

} // namespace hcc::workloads

#endif // HCC_WORKLOADS_SESSION_HPP
