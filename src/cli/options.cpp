#include "cli/options.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "crypto/calibrate.hpp"
#include "crypto/impl.hpp"
#include "ml/llm.hpp"
#include "obs/stats_io.hpp"
#include "perfmodel/model.hpp"
#include "perfmodel/projector.hpp"
#include "snap/snap.hpp"
#include "trace/compare.hpp"
#include "trace/critpath.hpp"
#include "trace/export.hpp"
#include "workloads/spec.hpp"
#include "workloads/spec_file.hpp"
#include "workloads/workload.hpp"

namespace hcc::cli {

namespace {

// ------------------------------------------------- the flag table

/** Bit for one command in a FlagSpec applicability mask. */
constexpr unsigned
bit(Command c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Commands that run a single workload through the runtime. */
constexpr unsigned kRunLike = bit(Command::Run) | bit(Command::Compare)
    | bit(Command::Trace) | bit(Command::Critical)
    | bit(Command::Project);
constexpr unsigned kEveryCommand = ~0u;

/**
 * Typed-field accessors: a flag shared by several subcommands (--seed,
 * --jobs, --out, ...) resolves the per-command struct it stores into
 * from `options.command`.  Returns null when the flag's field is not
 * hosted by the current command's struct — callers pair these with
 * the applicability mask, which rejects those invocations first.
 */
WorkloadChoice *
workloadOf(Options &o)
{
    switch (o.command) {
      case Command::Run: return &o.run.workload;
      case Command::Compare: return &o.compare.workload;
      case Command::Trace: return &o.trace.workload;
      case Command::Critical: return &o.critical.workload;
      case Command::Project: return &o.project.workload;
      default: return nullptr;
    }
}

SimShape *
simOf(Options &o)
{
    switch (o.command) {
      case Command::Run: return &o.run.sim;
      case Command::Compare: return &o.compare.sim;
      case Command::Trace: return &o.trace.sim;
      case Command::Critical: return &o.critical.sim;
      case Command::Project: return &o.project.sim;
      case Command::Snapshot: return &o.snapshot.sim;
      default: return nullptr;
    }
}

std::string *
statsOutOf(Options &o)
{
    switch (o.command) {
      case Command::Run: return &o.run.stats_out;
      case Command::Compare: return &o.compare.stats_out;
      case Command::Trace: return &o.trace.stats_out;
      case Command::Critical: return &o.critical.stats_out;
      case Command::Sweep: return &o.sweep.stats_out;
      case Command::Faults: return &o.faults.stats_out;
      case Command::Serve: return &o.serve.stats_out;
      case Command::CryptoCalibrate:
        return &o.crypto_calibrate.stats_out;
      default: return nullptr;
    }
}

std::string *
outFileOf(Options &o)
{
    switch (o.command) {
      case Command::Sweep: return &o.sweep.out_file;
      case Command::Faults: return &o.faults.out_file;
      case Command::Serve: return &o.serve.out_file;
      case Command::Snapshot: return &o.snapshot.out_file;
      default: return nullptr;
    }
}

int *
jobsOf(Options &o)
{
    switch (o.command) {
      case Command::Compare: return &o.compare.jobs;
      case Command::Sweep: return &o.sweep.jobs;
      case Command::Faults: return &o.faults.jobs;
      case Command::Serve: return &o.serve.jobs;
      default: return nullptr;
    }
}

OutputFormat *
formatOf(Options &o)
{
    switch (o.command) {
      case Command::Trace: return &o.trace.format;
      case Command::Sweep: return &o.sweep.format;
      case Command::Faults: return &o.faults.format;
      case Command::Serve: return &o.serve.format;
      default: return nullptr;
    }
}

/**
 * One declared flag: where it applies, whether it takes a value, how
 * to store it.  The whole CLI surface is this table — parsing, value
 * validation, "--x does not apply to 'cmd'" rejection and the
 * per-subcommand --help all iterate it, so a new flag (or a new
 * subcommand bit on an old flag) is one entry, not five code paths.
 */
struct FlagSpec
{
    const char *name;
    /** bit() mask of the subcommands accepting this flag. */
    unsigned commands;
    /** Value placeholder for help ("N", "FILE"); null: boolean. */
    const char *value_name;
    const char *help;
    /** Validate + store into the command's typed struct; sets
     *  @p error and returns false on bad values.  @p value is empty
     *  for boolean flags. */
    bool (*apply)(Options &opt, const std::string &value,
                  std::string &error);
};

bool
applyInt(int &out, int min, const char *flag,
         const std::string &value, std::string &error)
{
    try {
        out = std::stoi(value);
    } catch (...) {
        error = std::string("bad ") + flag + " value '" + value + "'";
        return false;
    }
    if (out < min) {
        error = std::string(flag) + " must be >= "
            + std::to_string(min);
        return false;
    }
    return true;
}

/** Run a throwing list parser at the CLI boundary: a FatalError
 *  becomes the flag's error string, not a process abort. */
template <typename Fn>
bool
applyParsed(std::string &error, Fn &&fn)
{
    try {
        fn();
        return true;
    } catch (const FatalError &e) {
        error = e.what();
        return false;
    }
}

/** Comma-split with empty items dropped. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream iss(csv);
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

const FlagSpec kFlags[] = {
    {"--app", kRunLike | bit(Command::Faults) | bit(Command::Snapshot),
     "NAME", "workload name (see `hccsim list`)",
     [](Options &o, const std::string &v, std::string &) {
         if (WorkloadChoice *w = workloadOf(o))
             w->app = v;
         else if (o.command == Command::Faults)
             o.faults.spec.app = v;
         else
             o.snapshot.app = v;
         return true;
     }},
    {"--spec", kRunLike | bit(Command::Sweep), "FILE",
     "user spec file (or sweep grid file)",
     [](Options &o, const std::string &v, std::string &) {
         if (WorkloadChoice *w = workloadOf(o))
             w->spec_file = v;
         else
             o.sweep.spec_file = v;
         return true;
     }},
    {"--cc", kRunLike | bit(Command::Snapshot), nullptr,
     "run inside a TD (CC mode)",
     [](Options &o, const std::string &, std::string &) {
         simOf(o)->cc = true;
         return true;
     }},
    {"--uvm",
     kRunLike | bit(Command::Faults) | bit(Command::Snapshot),
     nullptr,
     "use the managed-memory variant",
     [](Options &o, const std::string &, std::string &) {
         if (SimShape *sim = simOf(o))
             sim->uvm = true;
         else
             o.faults.spec.uvm = true;
         return true;
     }},
    {"--scale",
     kRunLike | bit(Command::Faults) | bit(Command::Snapshot), "X",
     "problem-size multiplier (default 1.0)",
     [](Options &o, const std::string &v, std::string &error) {
         double scale = 0.0;
         try {
             scale = std::stod(v);
         } catch (...) {
             error = "bad --scale value '" + v + "'";
             return false;
         }
         if (scale <= 0.0) {
             error = "--scale must be positive";
             return false;
         }
         if (SimShape *sim = simOf(o))
             sim->scale = scale;
         else
             o.faults.spec.scale = scale;
         return true;
     }},
    {"--seed", kRunLike | bit(Command::Snapshot) | bit(Command::Serve),
     "N", "RNG seed (default 42)",
     [](Options &o, const std::string &v, std::string &error) {
         std::uint64_t seed = 0;
         try {
             seed = std::stoull(v);
         } catch (...) {
             error = "bad --seed value '" + v + "'";
             return false;
         }
         if (SimShape *sim = simOf(o))
             sim->seed = seed;
         else
             o.serve.spec.seed = seed;
         return true;
     }},
    {"--format",
     bit(Command::Trace) | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Serve),
     "json|csv", "trace/results format (default json)",
     [](Options &o, const std::string &v, std::string &error) {
         if (v == "json")
             *formatOf(o) = OutputFormat::Json;
         else if (v == "csv")
             *formatOf(o) = OutputFormat::Csv;
         else {
             error = "--format must be json or csv";
             return false;
         }
         return true;
     }},
    {"--crypto-workers",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot) | bit(Command::Serve),
     "N",
     "parallel encryption threads (CC)",
     [](Options &o, const std::string &v, std::string &error) {
         int n = 0;
         if (!applyInt(n, 1, "--crypto-workers", v, error))
             return false;
         if (SimShape *sim = simOf(o))
             sim->crypto_workers = n;
         else if (o.command == Command::Sweep)
             o.sweep.grid.crypto_workers = n;
         else if (o.command == Command::Faults)
             o.faults.spec.crypto_workers = n;
         else
             o.serve.spec.crypto_workers = n;
         return true;
     }},
    {"--tee-io",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot) | bit(Command::Serve),
     nullptr, "model the TEE-IO hardware path (CC)",
     [](Options &o, const std::string &, std::string &) {
         if (SimShape *sim = simOf(o))
             sim->tee_io = true;
         else if (o.command == Command::Sweep)
             o.sweep.grid.tee_io = true;
         else if (o.command == Command::Faults)
             o.faults.spec.tee_io = true;
         else
             o.serve.spec.tee_io = true;
         return true;
     }},
    {"--overlap",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot) | bit(Command::Serve),
     "MODE",
     "channel overlap tier: none|double-buffer|speculative "
     "(sweep/faults/serve: comma list or \"all\", gridded as an axis)",
     [](Options &o, const std::string &v, std::string &error) {
         if (o.command == Command::Sweep
             || o.command == Command::Faults
             || o.command == Command::Serve) {
             return applyParsed(error, [&] {
                 auto list = sweep::parseOverlapList(v);
                 if (o.command == Command::Sweep)
                     o.sweep.grid.overlaps = std::move(list);
                 else if (o.command == Command::Faults)
                     o.faults.spec.overlaps = std::move(list);
                 else
                     o.serve.spec.overlaps = std::move(list);
             });
         }
         const auto mode = tee::parseOverlapMode(v);
         if (!mode) {
             error = "--overlap '" + v
                 + "' is not a single mode "
                   "(none|double-buffer|speculative; only "
                   "sweep/faults/serve grid a list)";
             return false;
         }
         simOf(o)->overlap = *mode;
         return true;
     }},
    {"--faults",
     bit(Command::Run) | bit(Command::Compare) | bit(Command::Trace)
         | bit(Command::Critical),
     "SITE=RATE,...",
     "inject faults, e.g. channel.tag_mismatch=0.05",
     [](Options &o, const std::string &v, std::string &error) {
         const auto parsed = fault::parseFaultSpec(v);
         if (!parsed.ok()) {
             error = "bad --faults value: "
                 + parsed.status().toString();
             return false;
         }
         simOf(o)->faults = parsed.value();
         return true;
     }},
    {"--sites", bit(Command::Faults), "S1,S2|all",
     "fault sites to campaign over (default all)",
     [](Options &o, const std::string &v, std::string &error) {
         auto &sites = o.faults.spec.sites;
         sites.clear();
         if (v == "all") {
             sites.assign(fault::allSites().begin(),
                          fault::allSites().end());
             return true;
         }
         for (const auto &name : splitList(v)) {
             const auto site = fault::parseSite(name);
             if (!site) {
                 error = "bad --sites value '" + name + "'";
                 return false;
             }
             sites.push_back(*site);
         }
         if (sites.empty()) {
             error = "empty --sites list";
             return false;
         }
         return true;
     }},
    {"--rates", bit(Command::Faults), "R1,R2",
     "injection rates in (0,1] (default 0.01)",
     [](Options &o, const std::string &v, std::string &error) {
         const auto items = splitList(v);
         if (items.empty()) {
             error = "empty --rates list";
             return false;
         }
         std::vector<double> rates;
         for (const auto &item : items) {
             double r = 0.0;
             try {
                 r = std::stod(item);
             } catch (...) {
                 error = "bad --rates value '" + item + "'";
                 return false;
             }
             if (r <= 0.0 || r > 1.0) {
                 error = "--rates values must be in (0, 1]";
                 return false;
             }
             rates.push_back(r);
         }
         o.faults.spec.rates = std::move(rates);
         return true;
     }},
    {"--stats-out",
     bit(Command::Run) | bit(Command::Compare) | bit(Command::Trace)
         | bit(Command::Critical) | bit(Command::Sweep)
         | bit(Command::Faults) | bit(Command::Serve)
         | bit(Command::CryptoCalibrate),
     "FILE", "write the stats registry as JSON",
     [](Options &o, const std::string &v, std::string &) {
         *statsOutOf(o) = v;
         return true;
     }},
    {"--trace-out", bit(Command::Trace), "FILE",
     "write the trace to a file instead of stdout",
     [](Options &o, const std::string &v, std::string &) {
         o.trace.trace_out = v;
         return true;
     }},
    {"--top", bit(Command::Critical), "N",
     "rows in the contributor/slack tables (default 10)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.critical.top, 1, "--top", v, error);
     }},
    {"--critical-out", bit(Command::Critical), "FILE",
     "write the full critical-path JSON (segments + slack)",
     [](Options &o, const std::string &v, std::string &) {
         o.critical.critical_out = v;
         return true;
     }},
    {"--out",
     bit(Command::Sweep) | bit(Command::Faults) | bit(Command::Serve)
         | bit(Command::Snapshot),
     "FILE",
     "per-cell results (CSV/JSON), or the snapshot output file",
     [](Options &o, const std::string &v, std::string &) {
         *outFileOf(o) = v;
         return true;
     }},
    {"--apps", bit(Command::Sweep), "A,B|all",
     "apps to grid over (or --spec GRIDFILE)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             o.sweep.grid.apps = sweep::parseAppList(v);
         });
     }},
    {"--cc-modes", bit(Command::Sweep) | bit(Command::Serve), "M",
     "on|off|both (default both)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             auto modes = sweep::parseModeList(v);
             if (o.command == Command::Sweep)
                 o.sweep.grid.cc_modes = std::move(modes);
             else
                 o.serve.spec.cc_modes = std::move(modes);
         });
     }},
    {"--uvm-modes", bit(Command::Sweep), "M",
     "on|off|both (default off)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             o.sweep.grid.uvm_modes = sweep::parseModeList(v);
         });
     }},
    {"--scales", bit(Command::Sweep), "X,Y",
     "problem-size multipliers (default 1)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             o.sweep.grid.scales = sweep::parseScaleList(v);
         });
     }},
    {"--seeds", bit(Command::Sweep) | bit(Command::Faults), "N,M",
     "RNG seeds (default 42)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             auto seeds = sweep::parseSeedList(v);
             if (o.command == Command::Sweep)
                 o.sweep.grid.seeds = std::move(seeds);
             else
                 o.faults.spec.seeds = std::move(seeds);
         });
     }},
    {"--jobs",
     bit(Command::Compare) | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Serve),
     "N", "worker threads (default: all cores)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(*jobsOf(o), 1, "--jobs", v, error);
     }},
    {"--fork-point",
     bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot),
     "none|auto|F[/F..]",
     "prefix/suffix cut path for fork/replay; '/'-chained cuts build "
     "a snapshot tree (see docs/SNAPSHOT.md)",
     [](Options &o, const std::string &v, std::string &error) {
         const auto parsed = snap::parseForkPoint(v);
         if (!parsed.ok()) {
             error = parsed.status().message();
             return false;
         }
         if (o.command == Command::Sweep)
             o.sweep.snapshot.fork_point = parsed.value();
         else if (o.command == Command::Faults)
             o.faults.spec.fork_point = parsed.value();
         else
             o.snapshot.fork_point = parsed.value();
         return true;
     }},
    {"--snapshot-budget", bit(Command::Sweep) | bit(Command::Faults),
     "MIB",
     "resident snapshot ceiling per fork group in MiB "
     "(0 = unlimited; default 512)",
     [](Options &o, const std::string &v, std::string &error) {
         int mib = 0;
         if (!applyInt(mib, 0, "--snapshot-budget", v, error))
             return false;
         const auto bytes = static_cast<std::size_t>(mib) << 20;
         if (o.command == Command::Sweep)
             o.sweep.snapshot.budget_bytes = bytes;
         else
             o.faults.spec.snapshot_budget_bytes = bytes;
         return true;
     }},
    {"--no-snapshot", bit(Command::Sweep) | bit(Command::Faults),
     nullptr,
     "run split cells cold instead of snapshot-forking them",
     [](Options &o, const std::string &, std::string &) {
         if (o.command == Command::Sweep)
             o.sweep.snapshot.no_snapshot = true;
         else
             o.faults.spec.no_snapshot = true;
         return true;
     }},
    {"--loads", bit(Command::Serve), "R1,R2",
     "offered loads in requests/s (default 8,24,48,96)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             o.serve.spec.loads = sweep::parseScaleList(v);
         });
     }},
    {"--requests", bit(Command::Serve), "N",
     "requests per arrival trace (default 160)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.serve.spec.requests, 1, "--requests", v,
                         error);
     }},
    {"--max-batch", bit(Command::Serve), "N",
     "continuous-batching admission ceiling (default 32)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.serve.spec.max_batch, 1, "--max-batch", v,
                         error);
     }},
    {"--prompt-len", bit(Command::Serve), "N",
     "mean prompt tokens per request (default 512)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.serve.spec.prompt_len, 1, "--prompt-len",
                         v, error);
     }},
    {"--gen-len", bit(Command::Serve), "N",
     "mean generated tokens per request (default 64)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.serve.spec.gen_len, 1, "--gen-len", v,
                         error);
     }},
    {"--kv-token-bytes", bit(Command::Serve), "N",
     "KV-cache bytes per token per session (default 32768)",
     [](Options &o, const std::string &v, std::string &error) {
         int n = 0;
         if (!applyInt(n, 1, "--kv-token-bytes", v, error))
             return false;
         o.serve.spec.kv_bytes_per_token = static_cast<Bytes>(n);
         return true;
     }},
    {"--kv-budget", bit(Command::Serve), "MIB",
     "aggregate KV budget in MiB; over it young sessions are "
     "preempted (default 256)",
     [](Options &o, const std::string &v, std::string &error) {
         int mib = 0;
         if (!applyInt(mib, 1, "--kv-budget", v, error))
             return false;
         o.serve.spec.kv_budget_bytes = static_cast<Bytes>(mib) << 20;
         return true;
     }},
    {"--bursts", bit(Command::Serve), "B:E:M,...",
     "arrival burst windows over the request-index fraction, e.g. "
     "0.5:0.8:4 (default: plain Poisson)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyParsed(error, [&] {
             o.serve.spec.bursts = serve::parseBurstList(v);
         });
     }},
    {"--backend", bit(Command::Serve), "NAME",
     "serving framework model: hf|vllm (default vllm)",
     [](Options &o, const std::string &v, std::string &error) {
         if (v == "hf")
             o.serve.spec.backend = ml::LlmBackend::HuggingFace;
         else if (v == "vllm")
             o.serve.spec.backend = ml::LlmBackend::Vllm;
         else {
             error = "bad --backend value '" + v + "' (hf|vllm)";
             return false;
         }
         return true;
     }},
    {"--quant", bit(Command::Serve), "NAME",
     "weight quantization: bf16|awq4 (default bf16)",
     [](Options &o, const std::string &v, std::string &error) {
         if (v == "bf16")
             o.serve.spec.quant = ml::LlmQuant::Bf16;
         else if (v == "awq4")
             o.serve.spec.quant = ml::LlmQuant::Awq4;
         else {
             error = "bad --quant value '" + v + "' (bf16|awq4)";
             return false;
         }
         return true;
     }},
    {"--inspect", bit(Command::Snapshot), "FILE",
     "print a snapshot file's meta and section table",
     [](Options &o, const std::string &v, std::string &) {
         o.snapshot.inspect = v;
         return true;
     }},
    {"--log-level", kEveryCommand, "LEVEL",
     "debug|info|warn|error|silent",
     [](Options &o, const std::string &v, std::string &error) {
         if (!parseLogLevel(v)) {
             error = "bad --log-level value '" + v
                 + "' (debug|info|warn|error|silent)";
             return false;
         }
         o.log_level = v;
         return true;
     }},
    {"--crypto-impl", kEveryCommand, "NAME",
     "functional crypto: scalar|ttable|aesni",
     [](Options &o, const std::string &v, std::string &error) {
         if (!crypto::parseCryptoImpl(v)) {
             error = "bad --crypto-impl value '" + v
                 + "' (scalar|ttable|aesni)";
             return false;
         }
         o.crypto_impl = v;
         return true;
     }},
    {"--tolerance", bit(Command::StatsDiff), "X",
     "relative tolerance before a change is drift",
     [](Options &o, const std::string &v, std::string &error) {
         try {
             o.stats_diff.tolerance = std::stod(v);
         } catch (...) {
             error = "bad --tolerance value '" + v + "'";
             return false;
         }
         if (o.stats_diff.tolerance < 0.0) {
             error = "--tolerance must be >= 0";
             return false;
         }
         return true;
     }},
    {"--ms", bit(Command::CryptoCalibrate), "N",
     "wall-clock budget per algorithm in ms (default 50)",
     [](Options &o, const std::string &v, std::string &error) {
         try {
             o.crypto_calibrate.budget_ms = std::stod(v);
         } catch (...) {
             error = "bad --ms value '" + v + "'";
             return false;
         }
         if (o.crypto_calibrate.budget_ms <= 0.0) {
             error = "--ms must be positive";
             return false;
         }
         return true;
     }},
};

const FlagSpec *
findFlag(const std::string &name)
{
    for (const FlagSpec &flag : kFlags)
        if (name == flag.name)
            return &flag;
    return nullptr;
}

/** (name, command) pairs; Help is resolved before the table runs. */
const std::pair<const char *, Command> kCommands[] = {
    {"list", Command::List},
    {"run", Command::Run},
    {"compare", Command::Compare},
    {"trace", Command::Trace},
    {"critical", Command::Critical},
    {"project", Command::Project},
    {"sweep", Command::Sweep},
    {"faults", Command::Faults},
    {"serve", Command::Serve},
    {"stats-diff", Command::StatsDiff},
    {"crypto-calibrate", Command::CryptoCalibrate},
    {"snapshot", Command::Snapshot},
};

} // namespace

const char *
commandName(Command command)
{
    for (const auto &[name, cmd] : kCommands)
        if (cmd == command)
            return name;
    return "help";
}

std::string
commandHelp(Command command)
{
    std::string out = std::string("usage: hccsim ")
        + commandName(command);
    if (command == Command::StatsDiff)
        out += " BASELINE CURRENT";
    out += " [options]\n\noptions:\n";
    for (const FlagSpec &flag : kFlags) {
        if (!(flag.commands & bit(command)))
            continue;
        std::string left = std::string("  ") + flag.name;
        if (flag.value_name)
            left += std::string(" ") + flag.value_name;
        if (left.size() < 26)
            left.resize(26, ' ');
        else
            left += ' ';
        out += left + flag.help + "\n";
    }
    return out;
}

std::string
usage()
{
    return
        "hccsim — CC-on-GPU overhead simulator (ISPASS'25 repro)\n"
        "\n"
        "usage:\n"
        "  hccsim list                      list workloads\n"
        "  hccsim run --app NAME [opts]     run one workload\n"
        "  hccsim compare --app NAME [opts] run base and CC, diff\n"
        "  hccsim trace --app NAME [opts]   dump the event trace\n"
        "  hccsim critical --app NAME [opts]\n"
        "                                   critical-path report +\n"
        "                                   bottleneck label (--top N,\n"
        "                                   --critical-out FILE)\n"
        "  hccsim project --app NAME [opts] predict the CC slowdown\n"
        "                                   from a base run\n"
        "  hccsim sweep --apps A,B|all [opts]\n"
        "                                   run a grid of simulations\n"
        "                                   in parallel (see --jobs)\n"
        "  hccsim faults --app NAME [opts]  fault-injection campaign:\n"
        "                                   a (site, rate, seed) grid\n"
        "                                   vs unfaulted baselines\n"
        "  hccsim serve [opts]              open-loop LLM serving:\n"
        "                                   TTFT/TPOT percentiles and\n"
        "                                   goodput vs offered load,\n"
        "                                   native vs CC (--loads,\n"
        "                                   --max-batch, --kv-budget)\n"
        "  hccsim stats-diff BASE CURRENT   diff two --stats-out dumps;\n"
        "                                   exit 1 if stats drifted\n"
        "  hccsim crypto-calibrate [opts]   measure this host's\n"
        "                                   functional crypto GB/s\n"
        "  hccsim snapshot --app NAME --out FILE\n"
        "                                   capture a fork-point\n"
        "                                   snapshot (--inspect FILE\n"
        "                                   prints one)\n"
        "\n"
        "`hccsim COMMAND --help` lists the options of one command.\n"
        "Common options:\n"
        "  --cc             run inside a TD (CC mode)\n"
        "  --uvm            use the managed-memory variant\n"
        "  --scale X        problem-size multiplier (default 1.0)\n"
        "  --seed N         RNG seed (default 42)\n"
        "  --faults SITE=RATE,...\n"
        "                   inject deterministic faults on the CC\n"
        "                   stack (run/compare/trace); `hccsim\n"
        "                   faults` sweeps sites x rates x seeds\n"
        "  --overlap M      CC copy-pipeline tier: none|double-\n"
        "                   buffer|speculative (sweep/faults/serve\n"
        "                   grid a comma list or `all`; see\n"
        "                   docs/OVERLAP.md)\n"
        "  --jobs N         worker threads (compare/sweep/faults/\n"
        "                   serve)\n"
        "  --fork-point P   none|auto|FRACTION, '/'-chainable\n"
        "                   (e.g. auto/0.95): where sweep/faults cut\n"
        "                   cells into a shared prefix, optional\n"
        "                   snapshot-tree segments and a replayed\n"
        "                   suffix (docs/SNAPSHOT.md)\n"
        "  --stats-out FILE write the stats registry as JSON\n"
        "  --log-level L    debug|info|warn|error|silent\n";
}

std::optional<Options>
parseArgs(const std::vector<std::string> &args, std::string &error)
{
    Options opt;
    if (args.empty()) {
        error = "missing command";
        return std::nullopt;
    }
    const std::string &cmd = args[0];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        opt.command = Command::Help;
        return opt;
    }
    bool known = false;
    for (const auto &[name, command] : kCommands) {
        if (cmd == name) {
            opt.command = command;
            known = true;
            break;
        }
    }
    if (!known) {
        error = "unknown command '" + cmd + "'";
        return std::nullopt;
    }

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            // Per-subcommand help short-circuits validation: `hccsim
            // faults --help` must work without --app.
            opt.show_help = true;
            return opt;
        }
        const FlagSpec *flag = findFlag(a);
        if (!flag) {
            if (opt.command == Command::StatsDiff && !a.empty()
                && a[0] != '-') {
                if (opt.stats_diff.baseline.empty()) {
                    opt.stats_diff.baseline = a;
                } else if (opt.stats_diff.current.empty()) {
                    opt.stats_diff.current = a;
                } else {
                    error = "unexpected argument '" + a + "'";
                    return std::nullopt;
                }
                continue;
            }
            error = "unknown option '" + a + "'";
            return std::nullopt;
        }
        if (!(flag->commands & bit(opt.command))) {
            error = std::string(flag->name) + " does not apply to '"
                + commandName(opt.command) + "'";
            return std::nullopt;
        }
        std::string value;
        if (flag->value_name) {
            if (i + 1 >= args.size()) {
                error = std::string(flag->name) + " requires a value";
                return std::nullopt;
            }
            value = args[++i];
        }
        if (!flag->apply(opt, value, error))
            return std::nullopt;
    }

    switch (opt.command) {
      case Command::StatsDiff:
        if (opt.stats_diff.baseline.empty()
            || opt.stats_diff.current.empty()) {
            error = "stats-diff requires BASELINE and CURRENT files";
            return std::nullopt;
        }
        break;
      case Command::Sweep:
        if (opt.sweep.grid.apps.empty()
            && opt.sweep.spec_file.empty()) {
            error = "sweep requires --apps or --spec GRIDFILE";
            return std::nullopt;
        }
        if (!opt.sweep.grid.apps.empty()
            && !opt.sweep.spec_file.empty()) {
            error = "--apps and --spec are mutually exclusive";
            return std::nullopt;
        }
        break;
      case Command::Faults:
        if (opt.faults.spec.app.empty()) {
            error = "faults requires --app";
            return std::nullopt;
        }
        break;
      case Command::Snapshot:
        if (opt.snapshot.app.empty() && opt.snapshot.inspect.empty()) {
            error = "snapshot requires --app (capture) or "
                    "--inspect FILE";
            return std::nullopt;
        }
        if (!opt.snapshot.app.empty()
            && !opt.snapshot.inspect.empty()) {
            error = "--app and --inspect are mutually exclusive";
            return std::nullopt;
        }
        if (!opt.snapshot.app.empty()
            && opt.snapshot.out_file.empty()) {
            error = "snapshot capture requires --out FILE";
            return std::nullopt;
        }
        break;
      case Command::Run:
      case Command::Compare:
      case Command::Trace:
      case Command::Critical:
      case Command::Project: {
        const WorkloadChoice &w = *workloadOf(opt);
        if (w.app.empty() && w.spec_file.empty()) {
            error = "this command requires --app or --spec";
            return std::nullopt;
        }
        if (!w.app.empty() && !w.spec_file.empty()) {
            error = "--app and --spec are mutually exclusive";
            return std::nullopt;
        }
        break;
      }
      case Command::List:
      case Command::Serve:
      case Command::CryptoCalibrate:
      case Command::Help:
        break;
    }
    return opt;
}

namespace {

workloads::WorkloadResult
runOnce(const WorkloadChoice &workload, const SimShape &sim, bool cc)
{
    rt::SystemConfig sys;
    sys.cc = cc;
    sys.seed = sim.seed;
    sys.channel.crypto_workers = sim.crypto_workers;
    sys.channel.tee_io = sim.tee_io;
    sys.channel.overlap = sim.overlap;
    sys.faults = sim.faults;
    workloads::WorkloadParams params;
    params.uvm = sim.uvm;
    params.scale = sim.scale;
    params.seed = sim.seed;
    if (!workload.spec_file.empty()) {
        auto spec = workloads::loadSpecFile(workload.spec_file);
        if (!spec.ok())
            fatal("%s", spec.status().toString().c_str());
        const workloads::SpecWorkload w(spec.take());
        return workloads::runWorkload(w, sys, params);
    }
    return workloads::runWorkload(workload.app, sys, params);
}

void
printSummary(const workloads::WorkloadResult &res, std::ostream &os)
{
    const auto &m = res.metrics;
    TextTable t(res.name + (res.cc ? " [cc]" : " [base]")
                + (res.uvm ? " [uvm]" : ""));
    t.header({"metric", "value"});
    t.row({"end-to-end", formatTime(m.end_to_end)});
    t.row({"launches", std::to_string(m.launches)});
    t.row({"sum KLO", formatTime(m.sumKlo())});
    t.row({"sum LQT", formatTime(m.sumLqt())});
    t.row({"sum KQT", formatTime(m.sumKqt())});
    t.row({"sum KET", formatTime(m.sumKet())});
    t.row({"copy (h2d/d2h/d2d)",
           formatTime(m.copy_h2d) + " / " + formatTime(m.copy_d2h)
               + " / " + formatTime(m.copy_d2d)});
    t.row({"alloc/free", formatTime(m.alloc_device + m.alloc_host
                                    + m.alloc_managed)
                             + " / " + formatTime(m.free_time)});
    t.row({"tdx hypercalls", std::to_string(res.tdx.hypercalls)});
    if (m.fault_recoveries > 0) {
        t.row({"fault recoveries",
               std::to_string(m.fault_recoveries) + " ("
                   + formatTime(m.fault_time) + ")"});
    }
    t.print(os);
}

/**
 * Write @p fn's output to @p path, checking the stream after both
 * open and write: a full disk or an unwritable path must fail loudly
 * (FatalError -> stderr + non-zero exit), never drop data silently.
 */
template <typename WriteFn>
void
writeFileChecked(const std::string &path, const char *what,
                 WriteFn &&fn)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open %s '%s'", what, path.c_str());
    fn(out);
    out.flush();
    if (!out)
        fatal("failed writing %s '%s'", what, path.c_str());
}

/** Write the registry sections of a finished run to --stats-out.
 *  @p extra_members: pre-rendered top-level JSON (the critical_path
 *  block), passed through to writeStatsJson. */
void
writeStatsFile(const std::string &path,
               const obs::StatsSections &sections,
               bool include_host = false,
               const std::string &extra_members = "")
{
    writeFileChecked(path, "stats file", [&](std::ostream &out) {
        obs::writeStatsJson(out, sections, include_host,
                            extra_members);
    });
}

/** Per-category base-vs-CC critical-path delta (compare). */
void
printCriticalDelta(const trace::CriticalPath &base,
                   const trace::CriticalPath &cc, std::ostream &os)
{
    TextTable t("critical-path delta (base -> cc)");
    t.header({"category", "base", "cc", "delta", "cc share"});
    for (std::size_t c = 0; c < trace::kPathCategoryCount; ++c) {
        const auto cat = static_cast<trace::PathCategory>(c);
        const SimTime b = base.shares[c];
        const SimTime k = cc.shares[c];
        if (b == 0 && k == 0)
            continue;
        const std::string delta = (k >= b ? "+" : "-")
            + formatTime(k >= b ? k - b : b - k);
        const double share = cc.end_to_end > 0
            ? 100.0 * static_cast<double>(k)
                  / static_cast<double>(cc.end_to_end)
            : 0.0;
        t.row({std::string(trace::pathCategoryName(cat)),
               formatTime(b), formatTime(k), delta,
               TextTable::pct(share)});
    }
    t.print(os);
    os << "bottleneck: " << trace::bottleneckName(base.bottleneck)
       << " -> " << trace::bottleneckName(cc.bottleneck) << "\n";
}

/** Fixed-precision double for table cells. */
std::string
formatGbs(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** One-decimal rate for the serve summary (tokens/s). */
std::string
formatRate(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    return buf;
}

/** Milliseconds with one decimal for the sweep wall-clock column. */
std::string
formatMs(double us)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", us / 1000.0);
    return buf;
}

/** Human summary of a finished sweep (wall-clock is host time). */
void
printSweepSummary(const sweep::SweepResult &r, std::ostream &os)
{
    TextTable t("sweep (" + std::to_string(r.cells.size())
                + " cells, --jobs " + std::to_string(r.jobs) + ")");
    t.header({"cell", "status", "end-to-end", "wall ms"});
    for (const auto &c : r.cells) {
        t.row({c.cell.label(), c.ok ? "ok" : "FAIL: " + c.error,
               c.ok ? formatTime(c.result.metrics.end_to_end) : "-",
               formatMs(c.wall_us)});
    }
    t.print(os);
    char util[32];
    std::snprintf(util, sizeof(util), "%.0f%%",
                  r.pool.utilization(r.wall_us) * 100.0);
    os << "\n" << (r.cells.size() - r.failures()) << "/"
       << r.cells.size() << " cells ok, wall " << formatMs(r.wall_us)
       << " ms, pool utilization " << util << " ("
       << r.pool.stolen << " steals)\n";
}

/** Fixed-precision slowdown for the campaign table. */
std::string
formatSlowdown(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fx", v);
    return buf;
}

/** Human summary of a finished fault campaign. */
void
printCampaignSummary(const fault::CampaignResult &r, std::ostream &os)
{
    TextTable t("fault campaign: " + r.spec.app + " ("
                + std::to_string(r.cells.size()) + " cells, --jobs "
                + std::to_string(r.jobs) + ")");
    t.header({"cell", "status", "end-to-end", "slowdown", "injected",
              "recovered"});
    for (const auto &c : r.cells) {
        t.row({c.cell.label(r.spec),
               c.ok ? "ok" : "FAIL: " + c.error,
               c.ok ? formatTime(c.result.end_to_end) : "-",
               c.ok ? formatSlowdown(c.slowdown) : "-",
               c.ok ? std::to_string(c.injected) : "-",
               c.ok ? std::to_string(c.recovered) : "-"});
    }
    t.print(os);
    os << "\n" << (r.cells.size() - r.failures()) << "/"
       << r.cells.size() << " cells ok, wall " << formatMs(r.wall_us)
       << " ms\n";
    if (r.snapshot_hits > 0)
        os << r.snapshot_hits << " cells forked from snapshots, peak "
           << r.peak_resident_bytes << " resident snapshot bytes\n";
}

/** Human summary of a finished serve sweep: one SLO row per cell. */
void
printServeSummary(const serve::ServeResult &r, std::ostream &os)
{
    TextTable t("serve: open-loop "
                + ml::llmBackendName(r.spec.backend) + "/"
                + ml::llmQuantName(r.spec.quant) + " ("
                + std::to_string(r.cells.size()) + " cells, --jobs "
                + std::to_string(r.jobs) + ")");
    t.header({"cell", "status", "offered tok/s", "goodput tok/s",
              "ttft p95", "tpot p95", "bottleneck"});
    for (const auto &c : r.cells) {
        const serve::ServePoint &p = c.point;
        t.row({c.cell.label(), c.ok ? "ok" : "FAIL: " + c.error,
               c.ok ? formatRate(p.offered_tok_s) : "-",
               c.ok ? formatRate(p.goodput_tok_s) : "-",
               c.ok ? formatTime(p.ttft_p95) : "-",
               c.ok ? formatTime(p.tpot_p95) : "-",
               c.ok ? std::string(trace::bottleneckName(p.bottleneck))
                    : "-"});
    }
    t.print(os);
    os << "\n" << (r.cells.size() - r.failures()) << "/"
       << r.cells.size() << " cells ok, wall " << formatMs(r.wall_us)
       << " ms\n";
}

} // namespace

int
runCli(const Options &opt, std::ostream &os)
{
    if (!opt.log_level.empty()) {
        if (const auto level = parseLogLevel(opt.log_level))
            setLogLevel(*level);
    }
    if (!opt.crypto_impl.empty())
        crypto::setActiveCryptoImpl(
            crypto::parseCryptoImpl(opt.crypto_impl));
    if (opt.show_help) {
        os << (opt.command == Command::Help ? usage()
                                            : commandHelp(opt.command));
        return 0;
    }
    switch (opt.command) {
      case Command::Help:
        os << usage();
        return 0;

      case Command::List: {
        TextTable t("workloads");
        t.header({"name", "suite", "uvm"});
        for (const auto *w :
             workloads::WorkloadRegistry::instance().all()) {
            t.row({w->name(), w->suite(),
                   w->supportsUvm() ? "yes" : "no"});
        }
        t.print(os);
        return 0;
      }

      case Command::Run: {
        const RunOptions &ro = opt.run;
        const auto res = runOnce(ro.workload, ro.sim, ro.sim.cc);
        printSummary(res, os);
        const auto d = perfmodel::decompose(res.trace);
        os << "\nperformance-model decomposition:\n" << d.report();
        os << "\ncritical path: "
           << trace::bottleneckName(res.critical.bottleneck)
           << " (on-path " << formatTime(res.critical.on_path_ps)
           << " of " << formatTime(res.critical.end_to_end)
           << "; see `hccsim critical`)\n";
        if (!ro.stats_out.empty())
            writeStatsFile(
                ro.stats_out, {{"", res.stats.get()}},
                /*include_host=*/false,
                trace::criticalPathJsonMember(res.critical));
        return 0;
      }

      case Command::Compare: {
        const CompareOptions &co = opt.compare;
        // Both runs are independent simulations, so run them as a
        // two-cell sweep grid: --jobs 2 overlaps them on two
        // workers, and the merge order (base first) is fixed by the
        // grid expansion, not by which finishes first.  User spec
        // files and faulted runs stay on the serial path (grid cells
        // carry neither a spec file nor a fault config).
        workloads::WorkloadResult base, cc;
        if (!co.workload.spec_file.empty() || co.sim.faults.any()) {
            base = runOnce(co.workload, co.sim, false);
            cc = runOnce(co.workload, co.sim, true);
        } else {
            sweep::GridSpec grid;
            grid.apps = {co.workload.app};
            grid.cc_modes = {false, true};
            grid.uvm_modes = {co.sim.uvm};
            grid.scales = {co.sim.scale};
            grid.seeds = {co.sim.seed};
            grid.overlaps = {co.sim.overlap};
            grid.crypto_workers = co.sim.crypto_workers;
            grid.tee_io = co.sim.tee_io;
            const int jobs = std::min(
                co.jobs > 0 ? co.jobs : ThreadPool::defaultJobs(), 2);
            auto sw = sweep::runSweep(grid, jobs);
            for (const auto &c : sw.cells)
                if (!c.ok)
                    fatal("%s", c.error.c_str());
            base = std::move(sw.cells[0].result);
            cc = std::move(sw.cells[1].result);
        }
        printSummary(base, os);
        os << "\n";
        printSummary(cc, os);
        const double r = static_cast<double>(cc.end_to_end)
            / static_cast<double>(base.end_to_end);
        os << "\nCC slowdown: " << TextTable::ratio(r) << "\n\n"
           << "event-level diff (Sec. VI-B style):\n"
           << trace::compareTraces(base.trace, cc.trace, 5).report()
           << "\n";
        printCriticalDelta(base.critical, cc.critical, os);
        if (!co.stats_out.empty()) {
            writeStatsFile(
                co.stats_out,
                {{"base.", base.stats.get()},
                 {"cc.", cc.stats.get()}},
                /*include_host=*/false,
                "\"critical_path\": {\"base\": "
                    + trace::criticalPathJson(base.critical)
                    + ", \"cc\": "
                    + trace::criticalPathJson(cc.critical) + "}");
        }
        return 0;
      }

      case Command::Trace: {
        const TraceOptions &to = opt.trace;
        const auto res = runOnce(to.workload, to.sim, to.sim.cc);
        const auto writeTrace = [&](std::ostream &out) {
            if (to.format == OutputFormat::Csv)
                trace::exportCsv(res.trace, out);
            else
                trace::exportChromeTrace(res.trace, out,
                                         res.stats.get(),
                                         &res.critical);
        };
        if (!to.trace_out.empty())
            writeFileChecked(to.trace_out, "trace file", writeTrace);
        else
            writeTrace(os);
        if (!to.stats_out.empty())
            writeStatsFile(
                to.stats_out, {{"", res.stats.get()}},
                /*include_host=*/false,
                trace::criticalPathJsonMember(res.critical));
        return 0;
      }

      case Command::Critical: {
        const CriticalOptions &co = opt.critical;
        const auto res = runOnce(co.workload, co.sim, co.sim.cc);
        os << trace::criticalReport(res.critical, res.trace, co.top);
        if (!co.critical_out.empty()) {
            writeFileChecked(
                co.critical_out, "critical-path file",
                [&](std::ostream &out) {
                    trace::writeCriticalJson(res.critical, res.trace,
                                             out);
                });
        }
        if (!co.stats_out.empty())
            writeStatsFile(
                co.stats_out, {{"", res.stats.get()}},
                /*include_host=*/false,
                trace::criticalPathJsonMember(res.critical));
        return 0;
      }

      case Command::Sweep: {
        const SweepOptions &so = opt.sweep;
        sweep::GridSpec grid;
        if (so.spec_file.empty()) {
            grid = so.grid;
        } else {
            auto loaded = sweep::loadGridFile(so.spec_file);
            if (!loaded.ok())
                fatal("%s", loaded.status().toString().c_str());
            grid = loaded.take();
        }
        if (so.snapshot.fork_point)
            grid.fork_point = *so.snapshot.fork_point;
        if (so.snapshot.no_snapshot)
            grid.no_snapshot = true;
        if (so.snapshot.budget_bytes)
            grid.snapshot_budget_bytes = *so.snapshot.budget_bytes;
        const int jobs =
            so.jobs > 0 ? so.jobs : ThreadPool::defaultJobs();
        obs::Registry reg;
        const auto result = sweep::runSweep(grid, jobs, &reg);
        printSweepSummary(result, os);
        if (!so.out_file.empty()) {
            writeFileChecked(
                so.out_file, "results file", [&](std::ostream &out) {
                    if (so.format == OutputFormat::Csv)
                        sweep::writeCellsCsv(result, out);
                    else
                        sweep::writeCellsJson(result, out);
                });
        }
        if (!so.stats_out.empty()) {
            writeFileChecked(so.stats_out, "stats file",
                             [&](std::ostream &out) {
                                 sweep::writeMergedStats(result, out);
                             });
        }
        return result.allOk() ? 0 : 1;
      }

      case Command::Faults: {
        const FaultsOptions &fo = opt.faults;
        fault::CampaignSpec spec = fo.spec;
        if (spec.sites.empty())
            spec.sites.assign(fault::allSites().begin(),
                              fault::allSites().end());
        const int jobs =
            fo.jobs > 0 ? fo.jobs : ThreadPool::defaultJobs();
        obs::Registry reg;
        const auto result = fault::runFaultCampaign(spec, jobs, &reg);
        printCampaignSummary(result, os);
        if (!fo.out_file.empty()) {
            writeFileChecked(
                fo.out_file, "results file", [&](std::ostream &out) {
                    if (fo.format == OutputFormat::Csv)
                        fault::writeCampaignCsv(result, out);
                    else
                        fault::writeCampaignJson(result, out);
                });
        }
        if (!fo.stats_out.empty()) {
            writeFileChecked(
                fo.stats_out, "stats file", [&](std::ostream &out) {
                    fault::writeCampaignStats(result, out);
                });
        }
        return result.allOk() ? 0 : 1;
      }

      case Command::Serve: {
        const ServeOptions &so = opt.serve;
        const int jobs =
            so.jobs > 0 ? so.jobs : ThreadPool::defaultJobs();
        const auto result = serve::runServe(so.spec, jobs);
        printServeSummary(result, os);
        if (!so.out_file.empty()) {
            writeFileChecked(
                so.out_file, "results file", [&](std::ostream &out) {
                    if (so.format == OutputFormat::Csv)
                        serve::writeServeCsv(result, out);
                    else
                        serve::writeServeJson(result, out);
                });
        }
        if (!so.stats_out.empty()) {
            writeFileChecked(
                so.stats_out, "stats file", [&](std::ostream &out) {
                    serve::writeServeStats(result, out);
                });
        }
        return result.allOk() ? 0 : 1;
      }

      case Command::Project: {
        const ProjectOptions &po = opt.project;
        const auto base = runOnce(po.workload, po.sim, false);
        const auto projection = perfmodel::projectCc(base.trace);
        os << "projecting '" << po.workload.app
           << "' from a base (non-CC) run into CC mode:\n"
           << projection.report();
        const auto actual = runOnce(po.workload, po.sim, true);
        const double actual_slowdown =
            static_cast<double>(actual.end_to_end)
            / static_cast<double>(base.end_to_end);
        os << "actual CC run: " << formatTime(actual.end_to_end)
           << " (" << TextTable::ratio(actual_slowdown) << ")\n";
        // Slack-aware hint: how much device work could still be
        // hidden (PipeLLM-style) before the projection's serial
        // arithmetic becomes the wrong model.
        SimTime max_slack = 0;
        const auto ev = base.trace.events();
        for (std::size_t i = 0; i < base.critical.slack.size(); ++i) {
            const auto kind = ev[i].kind;
            if (kind == trace::EventKind::Kernel
                || kind == trace::EventKind::MemcpyH2D
                || kind == trace::EventKind::MemcpyD2H
                || kind == trace::EventKind::MemcpyD2D)
                max_slack = std::max(max_slack,
                                     base.critical.slack[i]);
        }
        os << "base critical path: "
           << trace::bottleneckName(base.critical.bottleneck)
           << "; largest single-event slack "
           << formatTime(max_slack)
           << " (overlap headroom, see `hccsim critical`)\n";
        // Predicted-vs-achieved overlap mitigation: the analytic CC
        // copy rate of each tier (perfmodel) next to an actual CC
        // run of that tier.  "Recovery" is the fraction of CC
        // overhead a tier wins back — predicted on per-byte H2D cost
        // above the pinned-PCIe floor, achieved on end-to-end time
        // above the base run.
        os << "\n";
        TextTable ot("overlap mitigation (predicted vs achieved)");
        ot.header({"overlap", "pred h2d GB/s", "pred d2h GB/s",
                   "pred recovery", "cc end-to-end", "achieved"});
        const double none_cost = 1.0
            / perfmodel::ccPredictedRateGbps(tee::OverlapMode::None,
                                             /*d2h=*/false);
        const double link_cost = 1.0 / calib::kPciePinnedGBs;
        SimTime none_e2e = 0;
        for (const tee::OverlapMode mode :
             {tee::OverlapMode::None, tee::OverlapMode::DoubleBuffer,
              tee::OverlapMode::Speculative}) {
            SimShape shape = po.sim;
            shape.overlap = mode;
            const auto run = runOnce(po.workload, shape, true);
            if (mode == tee::OverlapMode::None)
                none_e2e = run.end_to_end;
            const double rate = perfmodel::ccPredictedRateGbps(
                mode, /*d2h=*/false);
            const double pred = none_cost > link_cost
                ? (none_cost - 1.0 / rate) / (none_cost - link_cost)
                : 0.0;
            const double achieved = none_e2e > base.end_to_end
                ? static_cast<double>(none_e2e - run.end_to_end)
                    / static_cast<double>(none_e2e - base.end_to_end)
                : 0.0;
            ot.row({tee::overlapModeName(mode), formatGbs(rate),
                    formatGbs(perfmodel::ccPredictedRateGbps(
                        mode, /*d2h=*/true)),
                    TextTable::pct(100.0 * pred),
                    formatTime(run.end_to_end),
                    TextTable::pct(100.0 * achieved)});
        }
        ot.print(os);
        return 0;
      }

      case Command::Snapshot: {
        const SnapshotOptions &so = opt.snapshot;
        if (!so.inspect.empty()) {
            const auto loaded = snap::readSnapshotFile(so.inspect);
            if (!loaded.ok())
                fatal("%s", loaded.status().toString().c_str());
            snap::printSnapshot(os, loaded.value());
            return 0;
        }
        const auto &w =
            workloads::WorkloadRegistry::instance().get(so.app);
        if (so.sim.uvm && !w.supportsUvm())
            fatal("workload '%s' has no UVM variant", so.app.c_str());
        if (!w.forkable())
            fatal("workload '%s' is not forkable", so.app.c_str());
        const snap::ForkPoint fork_point = so.fork_point.value_or(
            snap::ForkPoint{snap::ForkPoint::Mode::Auto, 0.0});
        const auto cuts = fork_point.resolvePath(w);
        if (cuts.empty())
            fatal("--fork-point none captures nothing; use auto or "
                  "a fraction");
        rt::SystemConfig sys;
        sys.cc = so.sim.cc;
        sys.seed = so.sim.seed;
        sys.channel.crypto_workers = so.sim.crypto_workers;
        sys.channel.tee_io = so.sim.tee_io;
        sys.channel.overlap = so.sim.overlap;
        workloads::WorkloadParams params;
        params.uvm = so.sim.uvm;
        params.scale = so.sim.scale;
        params.seed = so.sim.seed;
        rt::Context ctx(sys);
        // A chained path captures the *deepest* cut: run the prefix
        // to the first cut, then each segment to the next.  The
        // parent link records the path this capture chains from.
        auto resume = w.runPrefix(ctx, params, cuts[0]);
        for (std::size_t d = 1; d < cuts.size(); ++d)
            resume = w.runSegment(ctx, params, *resume, cuts[d]);
        snap::Snapshot snapshot;
        ctx.captureSnapshot(snapshot);
        snapshot.meta.app = so.app;
        snapshot.meta.uvm = so.sim.uvm;
        snapshot.meta.fork_point = fork_point.str();
        if (cuts.size() > 1) {
            const std::string spec_str = fork_point.str();
            snapshot.meta.parent =
                spec_str.substr(0, spec_str.rfind('/'));
        }
        const auto status =
            snap::writeSnapshotFile(so.out_file, snapshot);
        if (!status.ok())
            fatal("%s", status.toString().c_str());
        snap::printSnapshot(os, snapshot);
        os << "wrote " << so.out_file << "\n";
        return 0;
      }

      case Command::CryptoCalibrate: {
        obs::Registry reg;
        const auto results = crypto::calibrateHostCrypto(
            opt.crypto_calibrate.budget_ms, &reg);
        crypto::CpuCryptoModel model;
        TextTable t(
            "host crypto throughput ["
            + crypto::cryptoImplName(crypto::activeCryptoImpl())
            + " impl, " + crypto::cpuKindName(model.cpu())
            + " model]");
        t.header({"algorithm", "host GB/s", "model GB/s", "host/model"});
        for (const auto &r : results) {
            const double modeled = model.throughputGBs(r.algo);
            t.row({crypto::cipherAlgoName(r.algo), formatGbs(r.gbs),
                   formatGbs(modeled),
                   TextTable::ratio(r.gbs / modeled)});
        }
        t.print(os);
        crypto::applyCalibration(model, results);
        os << "\ncalibrated CpuCryptoModel: " << results.size()
           << " algorithm overrides would replace the paper's "
           << "Fig. 4b constants.\n";
        if (!opt.crypto_calibrate.stats_out.empty())
            writeStatsFile(opt.crypto_calibrate.stats_out,
                           {{"", &reg}},
                           /*include_host=*/true);
        return 0;
      }

      case Command::StatsDiff: {
        const auto baseline =
            obs::loadStatsFile(opt.stats_diff.baseline);
        if (!baseline.ok())
            fatal("%s", baseline.status().toString().c_str());
        const auto current =
            obs::loadStatsFile(opt.stats_diff.current);
        if (!current.ok())
            fatal("%s", current.status().toString().c_str());
        const auto diff = obs::diffStats(baseline.value(),
                                         current.value(),
                                         opt.stats_diff.tolerance);
        os << diff.report();
        return diff.pass() ? 0 : 1;
      }
    }
    return 1;
}

} // namespace hcc::cli
