#include "cli/options.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "crypto/calibrate.hpp"
#include "crypto/impl.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "obs/stats_io.hpp"
#include "perfmodel/model.hpp"
#include "perfmodel/projector.hpp"
#include "snap/fork.hpp"
#include "snap/snap.hpp"
#include "sweep/sweep.hpp"
#include "trace/compare.hpp"
#include "trace/critpath.hpp"
#include "trace/export.hpp"
#include "workloads/spec.hpp"
#include "workloads/spec_file.hpp"
#include "workloads/workload.hpp"

namespace hcc::cli {

namespace {

// ------------------------------------------------- the flag table

/** Bit for one command in a FlagSpec applicability mask. */
constexpr unsigned
bit(Command c)
{
    return 1u << static_cast<unsigned>(c);
}

/** Commands that run a single workload through the runtime. */
constexpr unsigned kRunLike = bit(Command::Run) | bit(Command::Compare)
    | bit(Command::Trace) | bit(Command::Critical)
    | bit(Command::Project);
constexpr unsigned kEveryCommand = ~0u;

/**
 * One declared flag: where it applies, whether it takes a value, how
 * to store it.  The whole CLI surface is this table — parsing, value
 * validation, "--x does not apply to 'cmd'" rejection and the
 * per-subcommand --help all iterate it, so a new flag (or a new
 * subcommand bit on an old flag) is one entry, not five code paths.
 */
struct FlagSpec
{
    const char *name;
    /** bit() mask of the subcommands accepting this flag. */
    unsigned commands;
    /** Value placeholder for help ("N", "FILE"); null: boolean. */
    const char *value_name;
    const char *help;
    /** Validate + store; sets @p error and returns false on bad
     *  values.  @p value is empty for boolean flags. */
    bool (*apply)(Options &opt, const std::string &value,
                  std::string &error);
};

bool
applyInt(int &out, int min, const char *flag,
         const std::string &value, std::string &error)
{
    try {
        out = std::stoi(value);
    } catch (...) {
        error = std::string("bad ") + flag + " value '" + value + "'";
        return false;
    }
    if (out < min) {
        error = std::string(flag) + " must be >= "
            + std::to_string(min);
        return false;
    }
    return true;
}

bool
applyMode(std::string &out, const char *flag, const std::string &value,
          std::string &error)
{
    if (value != "on" && value != "off" && value != "both") {
        error = std::string("bad ") + flag + " value '" + value
            + "' (on|off|both)";
        return false;
    }
    out = value;
    return true;
}

/** Comma-split with empty items dropped. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream iss(csv);
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

const FlagSpec kFlags[] = {
    {"--app", kRunLike | bit(Command::Faults) | bit(Command::Snapshot),
     "NAME", "workload name (see `hccsim list`)",
     [](Options &o, const std::string &v, std::string &) {
         o.app = v;
         return true;
     }},
    {"--spec", kRunLike | bit(Command::Sweep), "FILE",
     "user spec file (or sweep grid file)",
     [](Options &o, const std::string &v, std::string &) {
         o.spec_file = v;
         return true;
     }},
    {"--cc", kRunLike | bit(Command::Snapshot), nullptr,
     "run inside a TD (CC mode)",
     [](Options &o, const std::string &, std::string &) {
         o.cc = true;
         return true;
     }},
    {"--uvm",
     kRunLike | bit(Command::Faults) | bit(Command::Snapshot),
     nullptr,
     "use the managed-memory variant",
     [](Options &o, const std::string &, std::string &) {
         o.uvm = true;
         return true;
     }},
    {"--scale",
     kRunLike | bit(Command::Faults) | bit(Command::Snapshot), "X",
     "problem-size multiplier (default 1.0)",
     [](Options &o, const std::string &v, std::string &error) {
         try {
             o.scale = std::stod(v);
         } catch (...) {
             error = "bad --scale value '" + v + "'";
             return false;
         }
         if (o.scale <= 0.0) {
             error = "--scale must be positive";
             return false;
         }
         return true;
     }},
    {"--seed", kRunLike | bit(Command::Snapshot), "N",
     "RNG seed (default 42)",
     [](Options &o, const std::string &v, std::string &error) {
         try {
             o.seed = std::stoull(v);
         } catch (...) {
             error = "bad --seed value '" + v + "'";
             return false;
         }
         return true;
     }},
    {"--format",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults), "json|csv",
     "trace/results format (default json)",
     [](Options &o, const std::string &v, std::string &error) {
         if (v != "json" && v != "csv") {
             error = "--format must be json or csv";
             return false;
         }
         o.format = v;
         return true;
     }},
    {"--crypto-workers",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot),
     "N",
     "parallel encryption threads (CC)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.crypto_workers, 1, "--crypto-workers", v,
                         error);
     }},
    {"--tee-io",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot),
     nullptr, "model the TEE-IO hardware path (CC)",
     [](Options &o, const std::string &, std::string &) {
         o.tee_io = true;
         return true;
     }},
    {"--overlap",
     kRunLike | bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot),
     "MODE",
     "channel overlap tier: none|double-buffer|speculative "
     "(sweep/faults: comma list or \"all\", gridded as an axis)",
     [](Options &o, const std::string &v, std::string &error) {
         // Sweep and faults accept a list; validation of the list
         // shape happens at grid build.  Single-run commands validate
         // the one mode here so errors surface at parse time.
         if (v != "all") {
             for (const auto &name : splitList(v)) {
                 if (!tee::parseOverlapMode(name)) {
                     error = "bad --overlap value '" + name
                         + "' (none|double-buffer|speculative)";
                     return false;
                 }
             }
             if (splitList(v).empty()) {
                 error = "empty --overlap value";
                 return false;
             }
         }
         o.overlap = v;
         return true;
     }},
    {"--faults",
     bit(Command::Run) | bit(Command::Compare) | bit(Command::Trace)
         | bit(Command::Critical),
     "SITE=RATE,...",
     "inject faults, e.g. channel.tag_mismatch=0.05",
     [](Options &o, const std::string &v, std::string &error) {
         const auto parsed = fault::parseFaultSpec(v);
         if (!parsed.ok()) {
             error = "bad --faults value: "
                 + parsed.status().toString();
             return false;
         }
         o.fault_spec = v;
         return true;
     }},
    {"--sites", bit(Command::Faults), "S1,S2|all",
     "fault sites to campaign over (default all)",
     [](Options &o, const std::string &v, std::string &error) {
         if (v != "all") {
             for (const auto &name : splitList(v)) {
                 if (!fault::parseSite(name)) {
                     error = "bad --sites value '" + name + "'";
                     return false;
                 }
             }
             if (splitList(v).empty()) {
                 error = "empty --sites list";
                 return false;
             }
         }
         o.fault_sites = v;
         return true;
     }},
    {"--rates", bit(Command::Faults), "R1,R2",
     "injection rates in (0,1] (default 0.01)",
     [](Options &o, const std::string &v, std::string &error) {
         const auto items = splitList(v);
         if (items.empty()) {
             error = "empty --rates list";
             return false;
         }
         for (const auto &item : items) {
             double r = 0.0;
             try {
                 r = std::stod(item);
             } catch (...) {
                 error = "bad --rates value '" + item + "'";
                 return false;
             }
             if (r <= 0.0 || r > 1.0) {
                 error = "--rates values must be in (0, 1]";
                 return false;
             }
         }
         o.fault_rates = v;
         return true;
     }},
    {"--stats-out",
     bit(Command::Run) | bit(Command::Compare) | bit(Command::Trace)
         | bit(Command::Critical) | bit(Command::Sweep)
         | bit(Command::Faults) | bit(Command::CryptoCalibrate),
     "FILE", "write the stats registry as JSON",
     [](Options &o, const std::string &v, std::string &) {
         o.stats_out = v;
         return true;
     }},
    {"--trace-out", bit(Command::Trace), "FILE",
     "write the trace to a file instead of stdout",
     [](Options &o, const std::string &v, std::string &) {
         o.trace_out = v;
         return true;
     }},
    {"--top", bit(Command::Critical), "N",
     "rows in the contributor/slack tables (default 10)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.top, 1, "--top", v, error);
     }},
    {"--critical-out", bit(Command::Critical), "FILE",
     "write the full critical-path JSON (segments + slack)",
     [](Options &o, const std::string &v, std::string &) {
         o.critical_out = v;
         return true;
     }},
    {"--out",
     bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot),
     "FILE",
     "per-cell results (CSV/JSON), or the snapshot output file",
     [](Options &o, const std::string &v, std::string &) {
         o.out_file = v;
         return true;
     }},
    {"--apps", bit(Command::Sweep), "A,B|all",
     "apps to grid over (or --spec GRIDFILE)",
     [](Options &o, const std::string &v, std::string &) {
         o.sweep_apps = v;
         return true;
     }},
    {"--cc-modes", bit(Command::Sweep), "M",
     "on|off|both (default both)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyMode(o.sweep_cc, "--cc-modes", v, error);
     }},
    {"--uvm-modes", bit(Command::Sweep), "M",
     "on|off|both (default off)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyMode(o.sweep_uvm, "--uvm-modes", v, error);
     }},
    {"--scales", bit(Command::Sweep), "X,Y",
     "problem-size multipliers (default 1)",
     [](Options &o, const std::string &v, std::string &) {
         o.sweep_scales = v;
         return true;
     }},
    {"--seeds", bit(Command::Sweep) | bit(Command::Faults), "N,M",
     "RNG seeds (default 42)",
     [](Options &o, const std::string &v, std::string &) {
         o.sweep_seeds = v;
         return true;
     }},
    {"--jobs",
     bit(Command::Compare) | bit(Command::Sweep)
         | bit(Command::Faults),
     "N", "worker threads (default: all cores)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.jobs, 1, "--jobs", v, error);
     }},
    {"--fork-point",
     bit(Command::Sweep) | bit(Command::Faults)
         | bit(Command::Snapshot),
     "none|auto|F[/F..]",
     "prefix/suffix cut path for fork/replay; '/'-chained cuts build "
     "a snapshot tree (see docs/SNAPSHOT.md)",
     [](Options &o, const std::string &v, std::string &error) {
         const auto parsed = snap::parseForkPoint(v);
         if (!parsed.ok()) {
             error = parsed.status().message();
             return false;
         }
         o.fork_point_spec = v;
         return true;
     }},
    {"--snapshot-budget", bit(Command::Sweep) | bit(Command::Faults),
     "MIB",
     "resident snapshot ceiling per fork group in MiB "
     "(0 = unlimited; default 512)",
     [](Options &o, const std::string &v, std::string &error) {
         return applyInt(o.snapshot_budget_mib, 0,
                         "--snapshot-budget", v, error);
     }},
    {"--no-snapshot", bit(Command::Sweep) | bit(Command::Faults),
     nullptr,
     "run split cells cold instead of snapshot-forking them",
     [](Options &o, const std::string &, std::string &) {
         o.no_snapshot = true;
         return true;
     }},
    {"--inspect", bit(Command::Snapshot), "FILE",
     "print a snapshot file's meta and section table",
     [](Options &o, const std::string &v, std::string &) {
         o.snapshot_in = v;
         return true;
     }},
    {"--log-level", kEveryCommand, "LEVEL",
     "debug|info|warn|error|silent",
     [](Options &o, const std::string &v, std::string &error) {
         if (!parseLogLevel(v)) {
             error = "bad --log-level value '" + v
                 + "' (debug|info|warn|error|silent)";
             return false;
         }
         o.log_level = v;
         return true;
     }},
    {"--crypto-impl", kEveryCommand, "NAME",
     "functional crypto: scalar|ttable|aesni",
     [](Options &o, const std::string &v, std::string &error) {
         if (!crypto::parseCryptoImpl(v)) {
             error = "bad --crypto-impl value '" + v
                 + "' (scalar|ttable|aesni)";
             return false;
         }
         o.crypto_impl = v;
         return true;
     }},
    {"--tolerance", bit(Command::StatsDiff), "X",
     "relative tolerance before a change is drift",
     [](Options &o, const std::string &v, std::string &error) {
         try {
             o.tolerance = std::stod(v);
         } catch (...) {
             error = "bad --tolerance value '" + v + "'";
             return false;
         }
         if (o.tolerance < 0.0) {
             error = "--tolerance must be >= 0";
             return false;
         }
         return true;
     }},
    {"--ms", bit(Command::CryptoCalibrate), "N",
     "wall-clock budget per algorithm in ms (default 50)",
     [](Options &o, const std::string &v, std::string &error) {
         try {
             o.calib_ms = std::stod(v);
         } catch (...) {
             error = "bad --ms value '" + v + "'";
             return false;
         }
         if (o.calib_ms <= 0.0) {
             error = "--ms must be positive";
             return false;
         }
         return true;
     }},
};

const FlagSpec *
findFlag(const std::string &name)
{
    for (const FlagSpec &flag : kFlags)
        if (name == flag.name)
            return &flag;
    return nullptr;
}

/** (name, command) pairs; Help is resolved before the table runs. */
const std::pair<const char *, Command> kCommands[] = {
    {"list", Command::List},
    {"run", Command::Run},
    {"compare", Command::Compare},
    {"trace", Command::Trace},
    {"critical", Command::Critical},
    {"project", Command::Project},
    {"sweep", Command::Sweep},
    {"faults", Command::Faults},
    {"stats-diff", Command::StatsDiff},
    {"crypto-calibrate", Command::CryptoCalibrate},
    {"snapshot", Command::Snapshot},
};

} // namespace

const char *
commandName(Command command)
{
    for (const auto &[name, cmd] : kCommands)
        if (cmd == command)
            return name;
    return "help";
}

std::string
commandHelp(Command command)
{
    std::string out = std::string("usage: hccsim ")
        + commandName(command);
    if (command == Command::StatsDiff)
        out += " BASELINE CURRENT";
    out += " [options]\n\noptions:\n";
    for (const FlagSpec &flag : kFlags) {
        if (!(flag.commands & bit(command)))
            continue;
        std::string left = std::string("  ") + flag.name;
        if (flag.value_name)
            left += std::string(" ") + flag.value_name;
        if (left.size() < 26)
            left.resize(26, ' ');
        else
            left += ' ';
        out += left + flag.help + "\n";
    }
    return out;
}

std::string
usage()
{
    return
        "hccsim — CC-on-GPU overhead simulator (ISPASS'25 repro)\n"
        "\n"
        "usage:\n"
        "  hccsim list                      list workloads\n"
        "  hccsim run --app NAME [opts]     run one workload\n"
        "  hccsim compare --app NAME [opts] run base and CC, diff\n"
        "  hccsim trace --app NAME [opts]   dump the event trace\n"
        "  hccsim critical --app NAME [opts]\n"
        "                                   critical-path report +\n"
        "                                   bottleneck label (--top N,\n"
        "                                   --critical-out FILE)\n"
        "  hccsim project --app NAME [opts] predict the CC slowdown\n"
        "                                   from a base run\n"
        "  hccsim sweep --apps A,B|all [opts]\n"
        "                                   run a grid of simulations\n"
        "                                   in parallel (see --jobs)\n"
        "  hccsim faults --app NAME [opts]  fault-injection campaign:\n"
        "                                   a (site, rate, seed) grid\n"
        "                                   vs unfaulted baselines\n"
        "  hccsim stats-diff BASE CURRENT   diff two --stats-out dumps;\n"
        "                                   exit 1 if stats drifted\n"
        "  hccsim crypto-calibrate [opts]   measure this host's\n"
        "                                   functional crypto GB/s\n"
        "  hccsim snapshot --app NAME --out FILE\n"
        "                                   capture a fork-point\n"
        "                                   snapshot (--inspect FILE\n"
        "                                   prints one)\n"
        "\n"
        "`hccsim COMMAND --help` lists the options of one command.\n"
        "Common options:\n"
        "  --cc             run inside a TD (CC mode)\n"
        "  --uvm            use the managed-memory variant\n"
        "  --scale X        problem-size multiplier (default 1.0)\n"
        "  --seed N         RNG seed (default 42)\n"
        "  --faults SITE=RATE,...\n"
        "                   inject deterministic faults on the CC\n"
        "                   stack (run/compare/trace); `hccsim\n"
        "                   faults` sweeps sites x rates x seeds\n"
        "  --overlap M      CC copy-pipeline tier: none|double-\n"
        "                   buffer|speculative (sweep/faults grid a\n"
        "                   comma list or `all`; see docs/OVERLAP.md)\n"
        "  --jobs N         worker threads (compare/sweep/faults)\n"
        "  --fork-point P   none|auto|FRACTION, '/'-chainable\n"
        "                   (e.g. auto/0.95): where sweep/faults cut\n"
        "                   cells into a shared prefix, optional\n"
        "                   snapshot-tree segments and a replayed\n"
        "                   suffix (docs/SNAPSHOT.md)\n"
        "  --stats-out FILE write the stats registry as JSON\n"
        "  --log-level L    debug|info|warn|error|silent\n";
}

std::optional<Options>
parseArgs(const std::vector<std::string> &args, std::string &error)
{
    Options opt;
    if (args.empty()) {
        error = "missing command";
        return std::nullopt;
    }
    const std::string &cmd = args[0];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        opt.command = Command::Help;
        return opt;
    }
    bool known = false;
    for (const auto &[name, command] : kCommands) {
        if (cmd == name) {
            opt.command = command;
            known = true;
            break;
        }
    }
    if (!known) {
        error = "unknown command '" + cmd + "'";
        return std::nullopt;
    }

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "--help" || a == "-h") {
            // Per-subcommand help short-circuits validation: `hccsim
            // faults --help` must work without --app.
            opt.show_help = true;
            return opt;
        }
        const FlagSpec *flag = findFlag(a);
        if (!flag) {
            if (opt.command == Command::StatsDiff && !a.empty()
                && a[0] != '-') {
                if (opt.diff_baseline.empty()) {
                    opt.diff_baseline = a;
                } else if (opt.diff_current.empty()) {
                    opt.diff_current = a;
                } else {
                    error = "unexpected argument '" + a + "'";
                    return std::nullopt;
                }
                continue;
            }
            error = "unknown option '" + a + "'";
            return std::nullopt;
        }
        if (!(flag->commands & bit(opt.command))) {
            error = std::string(flag->name) + " does not apply to '"
                + commandName(opt.command) + "'";
            return std::nullopt;
        }
        std::string value;
        if (flag->value_name) {
            if (i + 1 >= args.size()) {
                error = std::string(flag->name) + " requires a value";
                return std::nullopt;
            }
            value = args[++i];
        }
        if (!flag->apply(opt, value, error))
            return std::nullopt;
    }

    switch (opt.command) {
      case Command::StatsDiff:
        if (opt.diff_baseline.empty() || opt.diff_current.empty()) {
            error = "stats-diff requires BASELINE and CURRENT files";
            return std::nullopt;
        }
        break;
      case Command::Sweep:
        if (opt.sweep_apps.empty() && opt.spec_file.empty()) {
            error = "sweep requires --apps or --spec GRIDFILE";
            return std::nullopt;
        }
        if (!opt.sweep_apps.empty() && !opt.spec_file.empty()) {
            error = "--apps and --spec are mutually exclusive";
            return std::nullopt;
        }
        break;
      case Command::Faults:
        if (opt.app.empty()) {
            error = "faults requires --app";
            return std::nullopt;
        }
        break;
      case Command::Snapshot:
        if (opt.app.empty() && opt.snapshot_in.empty()) {
            error = "snapshot requires --app (capture) or "
                    "--inspect FILE";
            return std::nullopt;
        }
        if (!opt.app.empty() && !opt.snapshot_in.empty()) {
            error = "--app and --inspect are mutually exclusive";
            return std::nullopt;
        }
        if (!opt.app.empty() && opt.out_file.empty()) {
            error = "snapshot capture requires --out FILE";
            return std::nullopt;
        }
        break;
      case Command::Run:
      case Command::Compare:
      case Command::Trace:
      case Command::Critical:
      case Command::Project:
        if (opt.app.empty() && opt.spec_file.empty()) {
            error = "this command requires --app or --spec";
            return std::nullopt;
        }
        if (!opt.app.empty() && !opt.spec_file.empty()) {
            error = "--app and --spec are mutually exclusive";
            return std::nullopt;
        }
        break;
      case Command::List:
      case Command::CryptoCalibrate:
      case Command::Help:
        break;
    }
    // Only sweep and faults grid --overlap as an axis; everywhere
    // else it must resolve to exactly one tier.
    if (!opt.overlap.empty() && opt.command != Command::Sweep
        && opt.command != Command::Faults
        && !tee::parseOverlapMode(opt.overlap)) {
        error = "--overlap takes a single mode outside sweep "
                "(none|double-buffer|speculative)";
        return std::nullopt;
    }
    return opt;
}

namespace {

/** Resolve --overlap to the one tier single-run commands take.
 *  Revalidated here because runCli() is also a library entry point:
 *  tests and tools build Options directly. */
tee::OverlapMode
singleOverlap(const Options &opt)
{
    if (opt.overlap.empty())
        return tee::OverlapMode::None;
    const auto mode = tee::parseOverlapMode(opt.overlap);
    if (!mode)
        fatal("--overlap '%s' is not a single overlap tier "
              "(none|double-buffer|speculative)",
              opt.overlap.c_str());
    return *mode;
}

workloads::WorkloadResult
runOnce(const Options &opt, bool cc)
{
    rt::SystemConfig sys;
    sys.cc = cc;
    sys.seed = opt.seed;
    sys.channel.crypto_workers = opt.crypto_workers;
    sys.channel.tee_io = opt.tee_io;
    sys.channel.overlap = singleOverlap(opt);
    if (!opt.fault_spec.empty()) {
        // Revalidated here because runCli() is also a library entry
        // point: tests and tools build Options directly.
        const auto faults = fault::parseFaultSpec(opt.fault_spec);
        if (!faults.ok())
            fatal("%s", faults.status().toString().c_str());
        sys.faults = faults.value();
    }
    workloads::WorkloadParams params;
    params.uvm = opt.uvm;
    params.scale = opt.scale;
    params.seed = opt.seed;
    if (!opt.spec_file.empty()) {
        auto spec = workloads::loadSpecFile(opt.spec_file);
        if (!spec.ok())
            fatal("%s", spec.status().toString().c_str());
        const workloads::SpecWorkload workload(spec.take());
        return workloads::runWorkload(workload, sys, params);
    }
    return workloads::runWorkload(opt.app, sys, params);
}

void
printSummary(const workloads::WorkloadResult &res, std::ostream &os)
{
    const auto &m = res.metrics;
    TextTable t(res.name + (res.cc ? " [cc]" : " [base]")
                + (res.uvm ? " [uvm]" : ""));
    t.header({"metric", "value"});
    t.row({"end-to-end", formatTime(m.end_to_end)});
    t.row({"launches", std::to_string(m.launches)});
    t.row({"sum KLO", formatTime(m.sumKlo())});
    t.row({"sum LQT", formatTime(m.sumLqt())});
    t.row({"sum KQT", formatTime(m.sumKqt())});
    t.row({"sum KET", formatTime(m.sumKet())});
    t.row({"copy (h2d/d2h/d2d)",
           formatTime(m.copy_h2d) + " / " + formatTime(m.copy_d2h)
               + " / " + formatTime(m.copy_d2d)});
    t.row({"alloc/free", formatTime(m.alloc_device + m.alloc_host
                                    + m.alloc_managed)
                             + " / " + formatTime(m.free_time)});
    t.row({"tdx hypercalls", std::to_string(res.tdx.hypercalls)});
    if (m.fault_recoveries > 0) {
        t.row({"fault recoveries",
               std::to_string(m.fault_recoveries) + " ("
                   + formatTime(m.fault_time) + ")"});
    }
    t.print(os);
}

/**
 * Write @p fn's output to @p path, checking the stream after both
 * open and write: a full disk or an unwritable path must fail loudly
 * (FatalError -> stderr + non-zero exit), never drop data silently.
 */
template <typename WriteFn>
void
writeFileChecked(const std::string &path, const char *what,
                 WriteFn &&fn)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open %s '%s'", what, path.c_str());
    fn(out);
    out.flush();
    if (!out)
        fatal("failed writing %s '%s'", what, path.c_str());
}

/** Write the registry sections of a finished run to --stats-out.
 *  @p extra_members: pre-rendered top-level JSON (the critical_path
 *  block), passed through to writeStatsJson. */
void
writeStatsFile(const std::string &path,
               const obs::StatsSections &sections,
               bool include_host = false,
               const std::string &extra_members = "")
{
    writeFileChecked(path, "stats file", [&](std::ostream &out) {
        obs::writeStatsJson(out, sections, include_host,
                            extra_members);
    });
}

/** Per-category base-vs-CC critical-path delta (compare). */
void
printCriticalDelta(const trace::CriticalPath &base,
                   const trace::CriticalPath &cc, std::ostream &os)
{
    TextTable t("critical-path delta (base -> cc)");
    t.header({"category", "base", "cc", "delta", "cc share"});
    for (std::size_t c = 0; c < trace::kPathCategoryCount; ++c) {
        const auto cat = static_cast<trace::PathCategory>(c);
        const SimTime b = base.shares[c];
        const SimTime k = cc.shares[c];
        if (b == 0 && k == 0)
            continue;
        const std::string delta = (k >= b ? "+" : "-")
            + formatTime(k >= b ? k - b : b - k);
        const double share = cc.end_to_end > 0
            ? 100.0 * static_cast<double>(k)
                  / static_cast<double>(cc.end_to_end)
            : 0.0;
        t.row({std::string(trace::pathCategoryName(cat)),
               formatTime(b), formatTime(k), delta,
               TextTable::pct(share)});
    }
    t.print(os);
    os << "bottleneck: " << trace::bottleneckName(base.bottleneck)
       << " -> " << trace::bottleneckName(cc.bottleneck) << "\n";
}

/** Fixed-precision double for table cells. */
std::string
formatGbs(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Milliseconds with one decimal for the sweep wall-clock column. */
std::string
formatMs(double us)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", us / 1000.0);
    return buf;
}

/** Human summary of a finished sweep (wall-clock is host time). */
void
printSweepSummary(const sweep::SweepResult &r, std::ostream &os)
{
    TextTable t("sweep (" + std::to_string(r.cells.size())
                + " cells, --jobs " + std::to_string(r.jobs) + ")");
    t.header({"cell", "status", "end-to-end", "wall ms"});
    for (const auto &c : r.cells) {
        t.row({c.cell.label(), c.ok ? "ok" : "FAIL: " + c.error,
               c.ok ? formatTime(c.result.metrics.end_to_end) : "-",
               formatMs(c.wall_us)});
    }
    t.print(os);
    char util[32];
    std::snprintf(util, sizeof(util), "%.0f%%",
                  r.pool.utilization(r.wall_us) * 100.0);
    os << "\n" << (r.cells.size() - r.failures()) << "/"
       << r.cells.size() << " cells ok, wall " << formatMs(r.wall_us)
       << " ms, pool utilization " << util << " ("
       << r.pool.stolen << " steals)\n";
}

/** CLI fork point, or @p fallback when --fork-point was not given.
 *  Revalidated here because runCli() is also a library entry point. */
snap::ForkPoint
forkPointFromFlags(const Options &opt, snap::ForkPoint fallback)
{
    if (opt.fork_point_spec.empty())
        return fallback;
    const auto parsed = snap::parseForkPoint(opt.fork_point_spec);
    if (!parsed.ok())
        fatal("%s", parsed.status().message().c_str());
    return parsed.value();
}

/** Build the sweep grid from CLI flags (not a --spec grid file). */
sweep::GridSpec
gridFromFlags(const Options &opt)
{
    sweep::GridSpec grid;
    grid.apps = sweep::parseAppList(opt.sweep_apps);
    grid.cc_modes = sweep::parseModeList(opt.sweep_cc);
    grid.uvm_modes = sweep::parseModeList(opt.sweep_uvm);
    grid.scales = sweep::parseScaleList(opt.sweep_scales);
    grid.seeds = sweep::parseSeedList(opt.sweep_seeds);
    if (!opt.overlap.empty())
        grid.overlaps = sweep::parseOverlapList(opt.overlap);
    grid.crypto_workers = opt.crypto_workers;
    grid.tee_io = opt.tee_io;
    return grid;
}

/** Build the campaign grid from CLI flags (fatal on bad lists —
 *  parseArgs already validated flag-sourced values). */
fault::CampaignSpec
campaignFromFlags(const Options &opt)
{
    fault::CampaignSpec spec;
    spec.app = opt.app;
    spec.uvm = opt.uvm;
    spec.scale = opt.scale;
    spec.crypto_workers = opt.crypto_workers;
    spec.tee_io = opt.tee_io;
    if (!opt.overlap.empty())
        spec.overlaps = sweep::parseOverlapList(opt.overlap);
    if (opt.fault_sites == "all") {
        spec.sites.assign(fault::allSites().begin(),
                          fault::allSites().end());
    } else {
        std::istringstream iss(opt.fault_sites);
        std::string item;
        while (std::getline(iss, item, ',')) {
            if (item.empty())
                continue;
            const auto site = fault::parseSite(item);
            if (!site)
                fatal("unknown fault site '%s'", item.c_str());
            spec.sites.push_back(*site);
        }
    }
    spec.rates = sweep::parseScaleList(opt.fault_rates);
    for (const double r : spec.rates)
        if (r > 1.0)
            fatal("fault rate %g out of (0, 1]", r);
    spec.seeds = sweep::parseSeedList(opt.sweep_seeds);
    // Default "none" keeps the original semantics (faults armed at
    // Context construction); --fork-point auto opts a campaign into
    // fork/replay, which arms at the fork point instead.
    spec.fork_point = forkPointFromFlags(opt, snap::ForkPoint{});
    spec.no_snapshot = opt.no_snapshot;
    if (opt.snapshot_budget_mib >= 0)
        spec.snapshot_budget_bytes =
            static_cast<std::size_t>(opt.snapshot_budget_mib) << 20;
    return spec;
}

/** Fixed-precision slowdown for the campaign table. */
std::string
formatSlowdown(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fx", v);
    return buf;
}

/** Human summary of a finished fault campaign. */
void
printCampaignSummary(const fault::CampaignResult &r, std::ostream &os)
{
    TextTable t("fault campaign: " + r.spec.app + " ("
                + std::to_string(r.cells.size()) + " cells, --jobs "
                + std::to_string(r.jobs) + ")");
    t.header({"cell", "status", "end-to-end", "slowdown", "injected",
              "recovered"});
    for (const auto &c : r.cells) {
        t.row({c.cell.label(r.spec),
               c.ok ? "ok" : "FAIL: " + c.error,
               c.ok ? formatTime(c.result.end_to_end) : "-",
               c.ok ? formatSlowdown(c.slowdown) : "-",
               c.ok ? std::to_string(c.injected) : "-",
               c.ok ? std::to_string(c.recovered) : "-"});
    }
    t.print(os);
    os << "\n" << (r.cells.size() - r.failures()) << "/"
       << r.cells.size() << " cells ok, wall " << formatMs(r.wall_us)
       << " ms\n";
    if (r.snapshot_hits > 0)
        os << r.snapshot_hits << " cells forked from snapshots, peak "
           << r.peak_resident_bytes << " resident snapshot bytes\n";
}

} // namespace

int
runCli(const Options &opt, std::ostream &os)
{
    if (!opt.log_level.empty()) {
        if (const auto level = parseLogLevel(opt.log_level))
            setLogLevel(*level);
    }
    if (!opt.crypto_impl.empty())
        crypto::setActiveCryptoImpl(
            crypto::parseCryptoImpl(opt.crypto_impl));
    if (opt.show_help) {
        os << (opt.command == Command::Help ? usage()
                                            : commandHelp(opt.command));
        return 0;
    }
    switch (opt.command) {
      case Command::Help:
        os << usage();
        return 0;

      case Command::List: {
        TextTable t("workloads");
        t.header({"name", "suite", "uvm"});
        for (const auto *w :
             workloads::WorkloadRegistry::instance().all()) {
            t.row({w->name(), w->suite(),
                   w->supportsUvm() ? "yes" : "no"});
        }
        t.print(os);
        return 0;
      }

      case Command::Run: {
        const auto res = runOnce(opt, opt.cc);
        printSummary(res, os);
        const auto d = perfmodel::decompose(res.trace);
        os << "\nperformance-model decomposition:\n" << d.report();
        os << "\ncritical path: "
           << trace::bottleneckName(res.critical.bottleneck)
           << " (on-path " << formatTime(res.critical.on_path_ps)
           << " of " << formatTime(res.critical.end_to_end)
           << "; see `hccsim critical`)\n";
        if (!opt.stats_out.empty())
            writeStatsFile(
                opt.stats_out, {{"", res.stats.get()}},
                /*include_host=*/false,
                trace::criticalPathJsonMember(res.critical));
        return 0;
      }

      case Command::Compare: {
        // Both runs are independent simulations, so run them as a
        // two-cell sweep grid: --jobs 2 overlaps them on two
        // workers, and the merge order (base first) is fixed by the
        // grid expansion, not by which finishes first.  User spec
        // files and faulted runs stay on the serial path (grid cells
        // carry neither a spec file nor a fault config).
        workloads::WorkloadResult base, cc;
        if (!opt.spec_file.empty() || !opt.fault_spec.empty()) {
            base = runOnce(opt, false);
            cc = runOnce(opt, true);
        } else {
            sweep::GridSpec grid;
            grid.apps = {opt.app};
            grid.cc_modes = {false, true};
            grid.uvm_modes = {opt.uvm};
            grid.scales = {opt.scale};
            grid.seeds = {opt.seed};
            grid.overlaps = {singleOverlap(opt)};
            grid.crypto_workers = opt.crypto_workers;
            grid.tee_io = opt.tee_io;
            const int jobs = std::min(
                opt.jobs > 0 ? opt.jobs : ThreadPool::defaultJobs(),
                2);
            auto sw = sweep::runSweep(grid, jobs);
            for (const auto &c : sw.cells)
                if (!c.ok)
                    fatal("%s", c.error.c_str());
            base = std::move(sw.cells[0].result);
            cc = std::move(sw.cells[1].result);
        }
        printSummary(base, os);
        os << "\n";
        printSummary(cc, os);
        const double r = static_cast<double>(cc.end_to_end)
            / static_cast<double>(base.end_to_end);
        os << "\nCC slowdown: " << TextTable::ratio(r) << "\n\n"
           << "event-level diff (Sec. VI-B style):\n"
           << trace::compareTraces(base.trace, cc.trace, 5).report()
           << "\n";
        printCriticalDelta(base.critical, cc.critical, os);
        if (!opt.stats_out.empty()) {
            writeStatsFile(
                opt.stats_out,
                {{"base.", base.stats.get()},
                 {"cc.", cc.stats.get()}},
                /*include_host=*/false,
                "\"critical_path\": {\"base\": "
                    + trace::criticalPathJson(base.critical)
                    + ", \"cc\": "
                    + trace::criticalPathJson(cc.critical) + "}");
        }
        return 0;
      }

      case Command::Trace: {
        const auto res = runOnce(opt, opt.cc);
        const auto writeTrace = [&](std::ostream &out) {
            if (opt.format == "csv")
                trace::exportCsv(res.trace, out);
            else
                trace::exportChromeTrace(res.trace, out,
                                         res.stats.get(),
                                         &res.critical);
        };
        if (!opt.trace_out.empty())
            writeFileChecked(opt.trace_out, "trace file", writeTrace);
        else
            writeTrace(os);
        if (!opt.stats_out.empty())
            writeStatsFile(
                opt.stats_out, {{"", res.stats.get()}},
                /*include_host=*/false,
                trace::criticalPathJsonMember(res.critical));
        return 0;
      }

      case Command::Critical: {
        const auto res = runOnce(opt, opt.cc);
        os << trace::criticalReport(res.critical, res.trace,
                                    opt.top);
        if (!opt.critical_out.empty()) {
            writeFileChecked(
                opt.critical_out, "critical-path file",
                [&](std::ostream &out) {
                    trace::writeCriticalJson(res.critical, res.trace,
                                             out);
                });
        }
        if (!opt.stats_out.empty())
            writeStatsFile(
                opt.stats_out, {{"", res.stats.get()}},
                /*include_host=*/false,
                trace::criticalPathJsonMember(res.critical));
        return 0;
      }

      case Command::Sweep: {
        sweep::GridSpec grid;
        if (opt.spec_file.empty()) {
            grid = gridFromFlags(opt);
        } else {
            auto loaded = sweep::loadGridFile(opt.spec_file);
            if (!loaded.ok())
                fatal("%s", loaded.status().toString().c_str());
            grid = loaded.take();
        }
        grid.fork_point = forkPointFromFlags(opt, grid.fork_point);
        if (opt.no_snapshot)
            grid.no_snapshot = true;
        if (opt.snapshot_budget_mib >= 0)
            grid.snapshot_budget_bytes =
                static_cast<std::size_t>(opt.snapshot_budget_mib)
                << 20;
        const int jobs =
            opt.jobs > 0 ? opt.jobs : ThreadPool::defaultJobs();
        obs::Registry reg;
        const auto result = sweep::runSweep(grid, jobs, &reg);
        printSweepSummary(result, os);
        if (!opt.out_file.empty()) {
            writeFileChecked(
                opt.out_file, "results file", [&](std::ostream &out) {
                    if (opt.format == "csv")
                        sweep::writeCellsCsv(result, out);
                    else
                        sweep::writeCellsJson(result, out);
                });
        }
        if (!opt.stats_out.empty()) {
            writeFileChecked(opt.stats_out, "stats file",
                             [&](std::ostream &out) {
                                 sweep::writeMergedStats(result, out);
                             });
        }
        return result.allOk() ? 0 : 1;
      }

      case Command::Faults: {
        const auto spec = campaignFromFlags(opt);
        const int jobs =
            opt.jobs > 0 ? opt.jobs : ThreadPool::defaultJobs();
        obs::Registry reg;
        const auto result = fault::runFaultCampaign(spec, jobs, &reg);
        printCampaignSummary(result, os);
        if (!opt.out_file.empty()) {
            writeFileChecked(
                opt.out_file, "results file", [&](std::ostream &out) {
                    if (opt.format == "csv")
                        fault::writeCampaignCsv(result, out);
                    else
                        fault::writeCampaignJson(result, out);
                });
        }
        if (!opt.stats_out.empty()) {
            writeFileChecked(
                opt.stats_out, "stats file", [&](std::ostream &out) {
                    fault::writeCampaignStats(result, out);
                });
        }
        return result.allOk() ? 0 : 1;
      }

      case Command::Project: {
        const auto base = runOnce(opt, false);
        const auto projection = perfmodel::projectCc(base.trace);
        os << "projecting '" << opt.app
           << "' from a base (non-CC) run into CC mode:\n"
           << projection.report();
        const auto actual = runOnce(opt, true);
        const double actual_slowdown =
            static_cast<double>(actual.end_to_end)
            / static_cast<double>(base.end_to_end);
        os << "actual CC run: " << formatTime(actual.end_to_end)
           << " (" << TextTable::ratio(actual_slowdown) << ")\n";
        // Slack-aware hint: how much device work could still be
        // hidden (PipeLLM-style) before the projection's serial
        // arithmetic becomes the wrong model.
        SimTime max_slack = 0;
        const auto ev = base.trace.events();
        for (std::size_t i = 0; i < base.critical.slack.size(); ++i) {
            const auto kind = ev[i].kind;
            if (kind == trace::EventKind::Kernel
                || kind == trace::EventKind::MemcpyH2D
                || kind == trace::EventKind::MemcpyD2H
                || kind == trace::EventKind::MemcpyD2D)
                max_slack = std::max(max_slack,
                                     base.critical.slack[i]);
        }
        os << "base critical path: "
           << trace::bottleneckName(base.critical.bottleneck)
           << "; largest single-event slack "
           << formatTime(max_slack)
           << " (overlap headroom, see `hccsim critical`)\n";
        // Predicted-vs-achieved overlap mitigation: the analytic CC
        // copy rate of each tier (perfmodel) next to an actual CC
        // run of that tier.  "Recovery" is the fraction of CC
        // overhead a tier wins back — predicted on per-byte H2D cost
        // above the pinned-PCIe floor, achieved on end-to-end time
        // above the base run.
        os << "\n";
        TextTable ot("overlap mitigation (predicted vs achieved)");
        ot.header({"overlap", "pred h2d GB/s", "pred d2h GB/s",
                   "pred recovery", "cc end-to-end", "achieved"});
        const double none_cost = 1.0
            / perfmodel::ccPredictedRateGbps(tee::OverlapMode::None,
                                             /*d2h=*/false);
        const double link_cost = 1.0 / calib::kPciePinnedGBs;
        SimTime none_e2e = 0;
        for (const tee::OverlapMode mode :
             {tee::OverlapMode::None, tee::OverlapMode::DoubleBuffer,
              tee::OverlapMode::Speculative}) {
            Options cell = opt;
            cell.overlap = tee::overlapModeName(mode);
            const auto run = runOnce(cell, true);
            if (mode == tee::OverlapMode::None)
                none_e2e = run.end_to_end;
            const double rate = perfmodel::ccPredictedRateGbps(
                mode, /*d2h=*/false);
            const double pred = none_cost > link_cost
                ? (none_cost - 1.0 / rate) / (none_cost - link_cost)
                : 0.0;
            const double achieved = none_e2e > base.end_to_end
                ? static_cast<double>(none_e2e - run.end_to_end)
                    / static_cast<double>(none_e2e - base.end_to_end)
                : 0.0;
            ot.row({tee::overlapModeName(mode), formatGbs(rate),
                    formatGbs(perfmodel::ccPredictedRateGbps(
                        mode, /*d2h=*/true)),
                    TextTable::pct(100.0 * pred),
                    formatTime(run.end_to_end),
                    TextTable::pct(100.0 * achieved)});
        }
        ot.print(os);
        return 0;
      }

      case Command::Snapshot: {
        if (!opt.snapshot_in.empty()) {
            const auto loaded =
                snap::readSnapshotFile(opt.snapshot_in);
            if (!loaded.ok())
                fatal("%s", loaded.status().toString().c_str());
            snap::printSnapshot(os, loaded.value());
            return 0;
        }
        const auto &w =
            workloads::WorkloadRegistry::instance().get(opt.app);
        if (opt.uvm && !w.supportsUvm())
            fatal("workload '%s' has no UVM variant",
                  opt.app.c_str());
        if (!w.forkable())
            fatal("workload '%s' is not forkable", opt.app.c_str());
        const auto fork_point = forkPointFromFlags(
            opt, snap::ForkPoint{snap::ForkPoint::Mode::Auto, 0.0});
        const auto cuts = fork_point.resolvePath(w);
        if (cuts.empty())
            fatal("--fork-point none captures nothing; use auto or "
                  "a fraction");
        rt::SystemConfig sys;
        sys.cc = opt.cc;
        sys.seed = opt.seed;
        sys.channel.crypto_workers = opt.crypto_workers;
        sys.channel.tee_io = opt.tee_io;
        sys.channel.overlap = singleOverlap(opt);
        workloads::WorkloadParams params;
        params.uvm = opt.uvm;
        params.scale = opt.scale;
        params.seed = opt.seed;
        rt::Context ctx(sys);
        // A chained path captures the *deepest* cut: run the prefix
        // to the first cut, then each segment to the next.  The
        // parent link records the path this capture chains from.
        auto resume = w.runPrefix(ctx, params, cuts[0]);
        for (std::size_t d = 1; d < cuts.size(); ++d)
            resume = w.runSegment(ctx, params, *resume, cuts[d]);
        snap::Snapshot snapshot;
        ctx.captureSnapshot(snapshot);
        snapshot.meta.app = opt.app;
        snapshot.meta.uvm = opt.uvm;
        snapshot.meta.fork_point = fork_point.str();
        if (cuts.size() > 1) {
            const std::string spec_str = fork_point.str();
            snapshot.meta.parent =
                spec_str.substr(0, spec_str.rfind('/'));
        }
        const auto status =
            snap::writeSnapshotFile(opt.out_file, snapshot);
        if (!status.ok())
            fatal("%s", status.toString().c_str());
        snap::printSnapshot(os, snapshot);
        os << "wrote " << opt.out_file << "\n";
        return 0;
      }

      case Command::CryptoCalibrate: {
        obs::Registry reg;
        const auto results =
            crypto::calibrateHostCrypto(opt.calib_ms, &reg);
        crypto::CpuCryptoModel model;
        TextTable t(
            "host crypto throughput ["
            + crypto::cryptoImplName(crypto::activeCryptoImpl())
            + " impl, " + crypto::cpuKindName(model.cpu())
            + " model]");
        t.header({"algorithm", "host GB/s", "model GB/s", "host/model"});
        for (const auto &r : results) {
            const double modeled = model.throughputGBs(r.algo);
            t.row({crypto::cipherAlgoName(r.algo), formatGbs(r.gbs),
                   formatGbs(modeled),
                   TextTable::ratio(r.gbs / modeled)});
        }
        t.print(os);
        crypto::applyCalibration(model, results);
        os << "\ncalibrated CpuCryptoModel: " << results.size()
           << " algorithm overrides would replace the paper's "
           << "Fig. 4b constants.\n";
        if (!opt.stats_out.empty())
            writeStatsFile(opt.stats_out, {{"", &reg}},
                           /*include_host=*/true);
        return 0;
      }

      case Command::StatsDiff: {
        const auto baseline = obs::loadStatsFile(opt.diff_baseline);
        if (!baseline.ok())
            fatal("%s", baseline.status().toString().c_str());
        const auto current = obs::loadStatsFile(opt.diff_current);
        if (!current.ok())
            fatal("%s", current.status().toString().c_str());
        const auto diff = obs::diffStats(baseline.value(),
                                         current.value(),
                                         opt.tolerance);
        os << diff.report();
        return diff.pass() ? 0 : 1;
      }
    }
    return 1;
}

} // namespace hcc::cli
