#include "cli/options.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/log.hpp"
#include "common/table.hpp"
#include "crypto/calibrate.hpp"
#include "crypto/impl.hpp"
#include "obs/stats_io.hpp"
#include "perfmodel/model.hpp"
#include "perfmodel/projector.hpp"
#include "sweep/sweep.hpp"
#include "trace/compare.hpp"
#include "trace/export.hpp"
#include "workloads/spec.hpp"
#include "workloads/spec_file.hpp"
#include "workloads/workload.hpp"

namespace hcc::cli {

std::string
usage()
{
    return
        "hccsim — CC-on-GPU overhead simulator (ISPASS'25 repro)\n"
        "\n"
        "usage:\n"
        "  hccsim list                      list workloads\n"
        "  hccsim run --app NAME [opts]     run one workload\n"
        "  hccsim compare --app NAME [opts] run base and CC, diff\n"
        "  hccsim trace --app NAME [opts]   dump the event trace\n"
        "  hccsim project --app NAME [opts] predict the CC slowdown\n"
        "                                   from a base run\n"
        "  hccsim sweep --apps A,B|all [opts]\n"
        "                                   run a grid of simulations\n"
        "                                   in parallel (see --jobs)\n"
        "  hccsim stats-diff BASE CURRENT   diff two --stats-out dumps;\n"
        "                                   exit 1 if stats drifted\n"
        "  hccsim crypto-calibrate [opts]   measure this host's\n"
        "                                   functional crypto GB/s\n"
        "\n"
        "sweep options:\n"
        "  --apps A,B|all   apps to grid over (or --spec GRIDFILE\n"
        "                   with apps/cc/uvm/scales/seeds keys)\n"
        "  --cc-modes M     on|off|both (default both)\n"
        "  --uvm-modes M    on|off|both (default off)\n"
        "  --scales X,Y     problem-size multipliers (default 1)\n"
        "  --seeds N,M      RNG seeds (default 42)\n"
        "  --jobs N         worker threads (default: all cores;\n"
        "                   also parallelizes compare)\n"
        "  --out FILE       per-cell results (CSV, or JSON with\n"
        "                   --format json); byte-identical for any\n"
        "                   --jobs value\n"
        "\n"
        "options:\n"
        "  --spec FILE      run a user-defined spec file instead\n"
        "                   of a built-in --app workload\n"
        "  --cc             run inside a TD (CC mode)\n"
        "  --uvm            use the managed-memory variant\n"
        "  --scale X        problem-size multiplier (default 1.0)\n"
        "  --seed N         RNG seed (default 42)\n"
        "  --format json|csv   trace format (default json)\n"
        "  --crypto-workers N  parallel encryption threads (CC)\n"
        "  --tee-io            model the TEE-IO hardware path (CC)\n"
        "  --stats-out FILE    write the stats registry as JSON\n"
        "                      (run/compare/trace/sweep)\n"
        "  --trace-out FILE    trace: write the trace to a file\n"
        "                      instead of stdout\n"
        "  --log-level LEVEL   debug|info|warn|error|silent\n"
        "  --tolerance X       stats-diff: relative tolerance before\n"
        "                      a change counts as drift (default 0)\n"
        "  --crypto-impl NAME  functional crypto implementation:\n"
        "                      scalar|ttable|aesni (default: fastest\n"
        "                      supported; HCC_CRYPTO_IMPL also works)\n"
        "  --ms N              crypto-calibrate: wall-clock budget\n"
        "                      per algorithm in ms (default 50)\n";
}

std::optional<Options>
parseArgs(const std::vector<std::string> &args, std::string &error)
{
    Options opt;
    if (args.empty()) {
        error = "missing command";
        return std::nullopt;
    }
    const std::string &cmd = args[0];
    if (cmd == "list") {
        opt.command = Command::List;
    } else if (cmd == "run") {
        opt.command = Command::Run;
    } else if (cmd == "compare") {
        opt.command = Command::Compare;
    } else if (cmd == "trace") {
        opt.command = Command::Trace;
    } else if (cmd == "project") {
        opt.command = Command::Project;
    } else if (cmd == "sweep") {
        opt.command = Command::Sweep;
    } else if (cmd == "stats-diff") {
        opt.command = Command::StatsDiff;
    } else if (cmd == "crypto-calibrate") {
        opt.command = Command::CryptoCalibrate;
    } else if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        opt.command = Command::Help;
        return opt;
    } else {
        error = "unknown command '" + cmd + "'";
        return std::nullopt;
    }

    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&](const char *what) -> const std::string * {
            if (i + 1 >= args.size()) {
                error = std::string(what) + " requires a value";
                return nullptr;
            }
            return &args[++i];
        };
        if (a == "--app") {
            const auto *v = next("--app");
            if (!v)
                return std::nullopt;
            opt.app = *v;
        } else if (a == "--spec") {
            const auto *v = next("--spec");
            if (!v)
                return std::nullopt;
            opt.spec_file = *v;
        } else if (a == "--cc") {
            opt.cc = true;
        } else if (a == "--tee-io") {
            opt.tee_io = true;
        } else if (a == "--crypto-workers") {
            const auto *v = next("--crypto-workers");
            if (!v)
                return std::nullopt;
            try {
                opt.crypto_workers = std::stoi(*v);
            } catch (...) {
                error = "bad --crypto-workers value '" + *v + "'";
                return std::nullopt;
            }
            if (opt.crypto_workers < 1) {
                error = "--crypto-workers must be >= 1";
                return std::nullopt;
            }
        } else if (a == "--uvm") {
            opt.uvm = true;
        } else if (a == "--scale") {
            const auto *v = next("--scale");
            if (!v)
                return std::nullopt;
            try {
                opt.scale = std::stod(*v);
            } catch (...) {
                error = "bad --scale value '" + *v + "'";
                return std::nullopt;
            }
            if (opt.scale <= 0.0) {
                error = "--scale must be positive";
                return std::nullopt;
            }
        } else if (a == "--seed") {
            const auto *v = next("--seed");
            if (!v)
                return std::nullopt;
            try {
                opt.seed = std::stoull(*v);
            } catch (...) {
                error = "bad --seed value '" + *v + "'";
                return std::nullopt;
            }
        } else if (a == "--format") {
            const auto *v = next("--format");
            if (!v)
                return std::nullopt;
            opt.format = *v;
            if (opt.format != "json" && opt.format != "csv") {
                error = "--format must be json or csv";
                return std::nullopt;
            }
        } else if (a == "--stats-out") {
            const auto *v = next("--stats-out");
            if (!v)
                return std::nullopt;
            opt.stats_out = *v;
        } else if (a == "--trace-out") {
            const auto *v = next("--trace-out");
            if (!v)
                return std::nullopt;
            opt.trace_out = *v;
        } else if (a == "--out") {
            const auto *v = next("--out");
            if (!v)
                return std::nullopt;
            opt.out_file = *v;
        } else if (a == "--apps") {
            const auto *v = next("--apps");
            if (!v)
                return std::nullopt;
            opt.sweep_apps = *v;
        } else if (a == "--cc-modes") {
            const auto *v = next("--cc-modes");
            if (!v)
                return std::nullopt;
            if (*v != "on" && *v != "off" && *v != "both") {
                error = "bad --cc-modes value '" + *v
                    + "' (on|off|both)";
                return std::nullopt;
            }
            opt.sweep_cc = *v;
        } else if (a == "--uvm-modes") {
            const auto *v = next("--uvm-modes");
            if (!v)
                return std::nullopt;
            if (*v != "on" && *v != "off" && *v != "both") {
                error = "bad --uvm-modes value '" + *v
                    + "' (on|off|both)";
                return std::nullopt;
            }
            opt.sweep_uvm = *v;
        } else if (a == "--scales") {
            const auto *v = next("--scales");
            if (!v)
                return std::nullopt;
            opt.sweep_scales = *v;
        } else if (a == "--seeds") {
            const auto *v = next("--seeds");
            if (!v)
                return std::nullopt;
            opt.sweep_seeds = *v;
        } else if (a == "--jobs") {
            const auto *v = next("--jobs");
            if (!v)
                return std::nullopt;
            try {
                opt.jobs = std::stoi(*v);
            } catch (...) {
                error = "bad --jobs value '" + *v + "'";
                return std::nullopt;
            }
            if (opt.jobs < 1) {
                error = "--jobs must be >= 1";
                return std::nullopt;
            }
        } else if (a == "--log-level") {
            const auto *v = next("--log-level");
            if (!v)
                return std::nullopt;
            if (!parseLogLevel(*v)) {
                error = "bad --log-level value '" + *v
                    + "' (debug|info|warn|error|silent)";
                return std::nullopt;
            }
            opt.log_level = *v;
        } else if (a == "--crypto-impl") {
            const auto *v = next("--crypto-impl");
            if (!v)
                return std::nullopt;
            if (!crypto::parseCryptoImpl(*v)) {
                error = "bad --crypto-impl value '" + *v
                    + "' (scalar|ttable|aesni)";
                return std::nullopt;
            }
            opt.crypto_impl = *v;
        } else if (a == "--ms") {
            const auto *v = next("--ms");
            if (!v)
                return std::nullopt;
            try {
                opt.calib_ms = std::stod(*v);
            } catch (...) {
                error = "bad --ms value '" + *v + "'";
                return std::nullopt;
            }
            if (opt.calib_ms <= 0.0) {
                error = "--ms must be positive";
                return std::nullopt;
            }
        } else if (a == "--tolerance") {
            const auto *v = next("--tolerance");
            if (!v)
                return std::nullopt;
            try {
                opt.tolerance = std::stod(*v);
            } catch (...) {
                error = "bad --tolerance value '" + *v + "'";
                return std::nullopt;
            }
            if (opt.tolerance < 0.0) {
                error = "--tolerance must be >= 0";
                return std::nullopt;
            }
        } else if (opt.command == Command::StatsDiff && !a.empty()
                   && a[0] != '-') {
            if (opt.diff_baseline.empty()) {
                opt.diff_baseline = a;
            } else if (opt.diff_current.empty()) {
                opt.diff_current = a;
            } else {
                error = "unexpected argument '" + a + "'";
                return std::nullopt;
            }
        } else {
            error = "unknown option '" + a + "'";
            return std::nullopt;
        }
    }

    if (opt.command == Command::StatsDiff) {
        if (opt.diff_baseline.empty() || opt.diff_current.empty()) {
            error = "stats-diff requires BASELINE and CURRENT files";
            return std::nullopt;
        }
        return opt;
    }
    if (opt.command == Command::CryptoCalibrate)
        return opt;
    if (opt.command == Command::Sweep) {
        if (opt.sweep_apps.empty() && opt.spec_file.empty()) {
            error = "sweep requires --apps or --spec GRIDFILE";
            return std::nullopt;
        }
        if (!opt.sweep_apps.empty() && !opt.spec_file.empty()) {
            error = "--apps and --spec are mutually exclusive";
            return std::nullopt;
        }
        return opt;
    }
    if (!opt.out_file.empty()) {
        error = "--out only applies to sweep";
        return std::nullopt;
    }
    if (!opt.trace_out.empty() && opt.command != Command::Trace) {
        error = "--trace-out only applies to trace";
        return std::nullopt;
    }
    if (opt.command != Command::List && opt.app.empty()
        && opt.spec_file.empty()) {
        error = "this command requires --app or --spec";
        return std::nullopt;
    }
    if (!opt.app.empty() && !opt.spec_file.empty()) {
        error = "--app and --spec are mutually exclusive";
        return std::nullopt;
    }
    if (!opt.stats_out.empty() && opt.command != Command::Run
        && opt.command != Command::Compare
        && opt.command != Command::Trace) {
        error = "--stats-out only applies to run/compare/trace/sweep";
        return std::nullopt;
    }
    return opt;
}

namespace {

workloads::WorkloadResult
runOnce(const Options &opt, bool cc)
{
    rt::SystemConfig sys;
    sys.cc = cc;
    sys.seed = opt.seed;
    sys.channel.crypto_workers = opt.crypto_workers;
    sys.channel.tee_io = opt.tee_io;
    workloads::WorkloadParams params;
    params.uvm = opt.uvm;
    params.scale = opt.scale;
    params.seed = opt.seed;
    if (!opt.spec_file.empty()) {
        const workloads::SpecWorkload workload(
            workloads::loadSpecFile(opt.spec_file));
        return workloads::runWorkload(workload, sys, params);
    }
    return workloads::runWorkload(opt.app, sys, params);
}

void
printSummary(const workloads::WorkloadResult &res, std::ostream &os)
{
    const auto &m = res.metrics;
    TextTable t(res.name + (res.cc ? " [cc]" : " [base]")
                + (res.uvm ? " [uvm]" : ""));
    t.header({"metric", "value"});
    t.row({"end-to-end", formatTime(m.end_to_end)});
    t.row({"launches", std::to_string(m.launches)});
    t.row({"sum KLO", formatTime(m.sumKlo())});
    t.row({"sum LQT", formatTime(m.sumLqt())});
    t.row({"sum KQT", formatTime(m.sumKqt())});
    t.row({"sum KET", formatTime(m.sumKet())});
    t.row({"copy (h2d/d2h/d2d)",
           formatTime(m.copy_h2d) + " / " + formatTime(m.copy_d2h)
               + " / " + formatTime(m.copy_d2d)});
    t.row({"alloc/free", formatTime(m.alloc_device + m.alloc_host
                                    + m.alloc_managed)
                             + " / " + formatTime(m.free_time)});
    t.row({"tdx hypercalls", std::to_string(res.tdx.hypercalls)});
    t.print(os);
}

/**
 * Write @p fn's output to @p path, checking the stream after both
 * open and write: a full disk or an unwritable path must fail loudly
 * (FatalError -> stderr + non-zero exit), never drop data silently.
 */
template <typename WriteFn>
void
writeFileChecked(const std::string &path, const char *what,
                 WriteFn &&fn)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open %s '%s'", what, path.c_str());
    fn(out);
    out.flush();
    if (!out)
        fatal("failed writing %s '%s'", what, path.c_str());
}

/** Write the registry sections of a finished run to --stats-out. */
void
writeStatsFile(const std::string &path,
               const obs::StatsSections &sections,
               bool include_host = false)
{
    writeFileChecked(path, "stats file", [&](std::ostream &out) {
        obs::writeStatsJson(out, sections, include_host);
    });
}

/** Fixed-precision double for table cells. */
std::string
formatGbs(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** Milliseconds with one decimal for the sweep wall-clock column. */
std::string
formatMs(double us)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", us / 1000.0);
    return buf;
}

/** Human summary of a finished sweep (wall-clock is host time). */
void
printSweepSummary(const sweep::SweepResult &r, std::ostream &os)
{
    TextTable t("sweep (" + std::to_string(r.cells.size())
                + " cells, --jobs " + std::to_string(r.jobs) + ")");
    t.header({"cell", "status", "end-to-end", "wall ms"});
    for (const auto &c : r.cells) {
        t.row({c.cell.label(), c.ok ? "ok" : "FAIL: " + c.error,
               c.ok ? formatTime(c.result.metrics.end_to_end) : "-",
               formatMs(c.wall_us)});
    }
    t.print(os);
    char util[32];
    std::snprintf(util, sizeof(util), "%.0f%%",
                  r.pool.utilization(r.wall_us) * 100.0);
    os << "\n" << (r.cells.size() - r.failures()) << "/"
       << r.cells.size() << " cells ok, wall " << formatMs(r.wall_us)
       << " ms, pool utilization " << util << " ("
       << r.pool.stolen << " steals)\n";
}

/** Build the sweep grid from CLI flags (not a --spec grid file). */
sweep::GridSpec
gridFromFlags(const Options &opt)
{
    sweep::GridSpec grid;
    grid.apps = sweep::parseAppList(opt.sweep_apps);
    grid.cc_modes = sweep::parseModeList(opt.sweep_cc);
    grid.uvm_modes = sweep::parseModeList(opt.sweep_uvm);
    grid.scales = sweep::parseScaleList(opt.sweep_scales);
    grid.seeds = sweep::parseSeedList(opt.sweep_seeds);
    grid.crypto_workers = opt.crypto_workers;
    grid.tee_io = opt.tee_io;
    return grid;
}

} // namespace

int
runCli(const Options &opt, std::ostream &os)
{
    if (!opt.log_level.empty()) {
        if (const auto level = parseLogLevel(opt.log_level))
            setLogLevel(*level);
    }
    if (!opt.crypto_impl.empty())
        crypto::setActiveCryptoImpl(
            crypto::parseCryptoImpl(opt.crypto_impl));
    switch (opt.command) {
      case Command::Help:
        os << usage();
        return 0;

      case Command::List: {
        TextTable t("workloads");
        t.header({"name", "suite", "uvm"});
        for (const auto *w :
             workloads::WorkloadRegistry::instance().all()) {
            t.row({w->name(), w->suite(),
                   w->supportsUvm() ? "yes" : "no"});
        }
        t.print(os);
        return 0;
      }

      case Command::Run: {
        const auto res = runOnce(opt, opt.cc);
        printSummary(res, os);
        const auto d = perfmodel::decompose(res.trace);
        os << "\nperformance-model decomposition:\n" << d.report();
        if (!opt.stats_out.empty())
            writeStatsFile(opt.stats_out, {{"", res.stats.get()}});
        return 0;
      }

      case Command::Compare: {
        // Both runs are independent simulations, so run them as a
        // two-cell sweep grid: --jobs 2 overlaps them on two
        // workers, and the merge order (base first) is fixed by the
        // grid expansion, not by which finishes first.  User spec
        // files stay on the serial path (a SpecWorkload is built
        // from the file per run).
        workloads::WorkloadResult base, cc;
        if (!opt.spec_file.empty()) {
            base = runOnce(opt, false);
            cc = runOnce(opt, true);
        } else {
            sweep::GridSpec grid;
            grid.apps = {opt.app};
            grid.cc_modes = {false, true};
            grid.uvm_modes = {opt.uvm};
            grid.scales = {opt.scale};
            grid.seeds = {opt.seed};
            grid.crypto_workers = opt.crypto_workers;
            grid.tee_io = opt.tee_io;
            const int jobs = std::min(
                opt.jobs > 0 ? opt.jobs : ThreadPool::defaultJobs(),
                2);
            auto sw = sweep::runSweep(grid, jobs);
            for (const auto &c : sw.cells)
                if (!c.ok)
                    fatal("%s", c.error.c_str());
            base = std::move(sw.cells[0].result);
            cc = std::move(sw.cells[1].result);
        }
        printSummary(base, os);
        os << "\n";
        printSummary(cc, os);
        const double r = static_cast<double>(cc.end_to_end)
            / static_cast<double>(base.end_to_end);
        os << "\nCC slowdown: " << TextTable::ratio(r) << "\n\n"
           << "event-level diff (Sec. VI-B style):\n"
           << trace::compareTraces(base.trace, cc.trace, 5).report();
        if (!opt.stats_out.empty()) {
            writeStatsFile(opt.stats_out,
                           {{"base.", base.stats.get()},
                            {"cc.", cc.stats.get()}});
        }
        return 0;
      }

      case Command::Trace: {
        const auto res = runOnce(opt, opt.cc);
        const auto writeTrace = [&](std::ostream &out) {
            if (opt.format == "csv")
                trace::exportCsv(res.trace, out);
            else
                trace::exportChromeTrace(res.trace, out,
                                         res.stats.get());
        };
        if (!opt.trace_out.empty())
            writeFileChecked(opt.trace_out, "trace file", writeTrace);
        else
            writeTrace(os);
        if (!opt.stats_out.empty())
            writeStatsFile(opt.stats_out, {{"", res.stats.get()}});
        return 0;
      }

      case Command::Sweep: {
        const sweep::GridSpec grid = opt.spec_file.empty()
            ? gridFromFlags(opt)
            : sweep::loadGridFile(opt.spec_file);
        const int jobs =
            opt.jobs > 0 ? opt.jobs : ThreadPool::defaultJobs();
        obs::Registry reg;
        const auto result = sweep::runSweep(grid, jobs, &reg);
        printSweepSummary(result, os);
        if (!opt.out_file.empty()) {
            writeFileChecked(
                opt.out_file, "results file", [&](std::ostream &out) {
                    if (opt.format == "csv")
                        sweep::writeCellsCsv(result, out);
                    else
                        sweep::writeCellsJson(result, out);
                });
        }
        if (!opt.stats_out.empty()) {
            writeFileChecked(opt.stats_out, "stats file",
                             [&](std::ostream &out) {
                                 sweep::writeMergedStats(result, out);
                             });
        }
        return result.allOk() ? 0 : 1;
      }

      case Command::Project: {
        const auto base = runOnce(opt, false);
        const auto projection = perfmodel::projectCc(base.trace);
        os << "projecting '" << opt.app
           << "' from a base (non-CC) run into CC mode:\n"
           << projection.report();
        const auto actual = runOnce(opt, true);
        const double actual_slowdown =
            static_cast<double>(actual.end_to_end)
            / static_cast<double>(base.end_to_end);
        os << "actual CC run: " << formatTime(actual.end_to_end)
           << " (" << TextTable::ratio(actual_slowdown) << ")\n";
        return 0;
      }

      case Command::CryptoCalibrate: {
        obs::Registry reg;
        const auto results =
            crypto::calibrateHostCrypto(opt.calib_ms, &reg);
        crypto::CpuCryptoModel model;
        TextTable t(
            "host crypto throughput ["
            + crypto::cryptoImplName(crypto::activeCryptoImpl())
            + " impl, " + crypto::cpuKindName(model.cpu())
            + " model]");
        t.header({"algorithm", "host GB/s", "model GB/s", "host/model"});
        for (const auto &r : results) {
            const double modeled = model.throughputGBs(r.algo);
            t.row({crypto::cipherAlgoName(r.algo), formatGbs(r.gbs),
                   formatGbs(modeled),
                   TextTable::ratio(r.gbs / modeled)});
        }
        t.print(os);
        crypto::applyCalibration(model, results);
        os << "\ncalibrated CpuCryptoModel: " << results.size()
           << " algorithm overrides would replace the paper's "
           << "Fig. 4b constants.\n";
        if (!opt.stats_out.empty())
            writeStatsFile(opt.stats_out, {{"", &reg}},
                           /*include_host=*/true);
        return 0;
      }

      case Command::StatsDiff: {
        const auto baseline = obs::loadStatsFile(opt.diff_baseline);
        const auto current = obs::loadStatsFile(opt.diff_current);
        const auto diff =
            obs::diffStats(baseline, current, opt.tolerance);
        os << diff.report();
        return diff.pass() ? 0 : 1;
      }
    }
    return 1;
}

} // namespace hcc::cli
