/**
 * @file
 * Command-line interface of the `hccsim` tool: list workloads, run
 * one under a chosen configuration, compare base vs CC, export a
 * trace, drive a fault-injection campaign, or serve an open-loop LLM
 * workload.  Parsing and execution are library functions so they are
 * unit-testable; tools/hccsim.cpp is a thin main().
 *
 * All subcommands share one declarative flag table (options.cpp): a
 * flag is declared once with the set of subcommands it applies to,
 * so value parsing, "--x requires a value", "--x does not apply to
 * 'cmd'", unknown-flag errors and the per-subcommand `--help` output
 * are uniform by construction.
 *
 * Options are *typed per command*: every subcommand owns a struct of
 * already-parsed values (enums, lists, engine spec structs), filled
 * by the flag table at the CLI boundary.  Downstream code never
 * re-parses a string — an `Options` that parseArgs() accepted is
 * directly executable, and tests/tools that build Options by hand
 * get compile-time field checking instead of stringly-typed modes.
 */

#ifndef HCC_CLI_OPTIONS_HPP
#define HCC_CLI_OPTIONS_HPP

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "serve/serve.hpp"
#include "snap/fork.hpp"
#include "sweep/sweep.hpp"
#include "tee/secure_channel.hpp"

namespace hcc::cli {

/** Supported subcommands. */
enum class Command
{
    List,
    Run,
    Compare,
    Trace,
    Critical,
    Project,
    Sweep,
    Faults,
    Serve,
    StatsDiff,
    CryptoCalibrate,
    Snapshot,
    Help,
};

/** Structured-output format for traces and per-cell results. */
enum class OutputFormat
{
    Json,
    Csv,
};

/** Workload selection shared by the single-run commands: exactly one
 *  of @p app (registry name) or @p spec_file (user spec). */
struct WorkloadChoice
{
    std::string app;
    std::string spec_file;
};

/**
 * The simulator shape of one single run: everything that configures
 * the Context and the workload variant.  Shared by run-like commands
 * and snapshot capture.  All values are parsed — the overlap tier is
 * an enum and the fault spec a FaultConfig, so runCli() never
 * revalidates strings.
 */
struct SimShape
{
    /** Run inside a TD with the GPU in CC mode. */
    bool cc = false;
    /** Use the managed-memory (UVM) variant. */
    bool uvm = false;
    /** Problem-size multiplier. */
    double scale = 1.0;
    /** RNG seed. */
    std::uint64_t seed = 42;
    /** Parallel encryption workers in the CC transfer path. */
    int crypto_workers = 1;
    /** Model the hypothetical TEE-IO hardware path. */
    bool tee_io = false;
    /** Channel overlap tier (single-run commands take exactly one). */
    tee::OverlapMode overlap = tee::OverlapMode::None;
    /** Deterministic fault injection (all-zero = no faults). */
    fault::FaultConfig faults;
};

/** `hccsim run`. */
struct RunOptions
{
    WorkloadChoice workload;
    SimShape sim;
    std::string stats_out;
};

/** `hccsim compare`. */
struct CompareOptions
{
    WorkloadChoice workload;
    SimShape sim;
    /** Worker threads (0 = hardware default). */
    int jobs = 0;
    std::string stats_out;
};

/** `hccsim trace`. */
struct TraceOptions
{
    WorkloadChoice workload;
    SimShape sim;
    OutputFormat format = OutputFormat::Json;
    /** Write the trace here instead of stdout. */
    std::string trace_out;
    std::string stats_out;
};

/** `hccsim critical`. */
struct CriticalOptions
{
    WorkloadChoice workload;
    SimShape sim;
    /** Rows in the contributor/slack report tables. */
    int top = 10;
    /** Write the full critical-path JSON (segments + slack). */
    std::string critical_out;
    std::string stats_out;
};

/** `hccsim project`. */
struct ProjectOptions
{
    WorkloadChoice workload;
    SimShape sim;
};

/** Snapshot-engine overrides that must compose with a grid loaded
 *  from a --spec file: unset fields keep the file's (or the
 *  engine's) default. */
struct SnapshotOverrides
{
    std::optional<snap::ForkPoint> fork_point;
    bool no_snapshot = false;
    /** Resident snapshot ceiling in bytes (0 = unlimited). */
    std::optional<std::size_t> budget_bytes;
};

/** `hccsim sweep`.  The grid axes live in the typed
 *  sweep::GridSpec the engine consumes; `grid.apps` empty means
 *  --apps was not given (then @p spec_file must name a grid file). */
struct SweepOptions
{
    std::string spec_file;
    sweep::GridSpec grid;
    SnapshotOverrides snapshot;
    int jobs = 0;
    OutputFormat format = OutputFormat::Json;
    /** Per-cell results file (CSV/JSON per @p format). */
    std::string out_file;
    std::string stats_out;
};

/** `hccsim faults`.  The campaign axes live in the typed
 *  fault::CampaignSpec the engine consumes; `spec.sites` empty means
 *  --sites was not given (runCli then campaigns over allSites()). */
struct FaultsOptions
{
    FaultsOptions()
    {
        spec.app.clear();
        spec.rates = {0.01};
        spec.seeds = {42};
    }

    fault::CampaignSpec spec;
    int jobs = 0;
    OutputFormat format = OutputFormat::Json;
    std::string out_file;
    std::string stats_out;
};

/** `hccsim serve`.  The experiment lives in the typed
 *  serve::ServeSpec the engine consumes. */
struct ServeOptions
{
    serve::ServeSpec spec;
    int jobs = 0;
    OutputFormat format = OutputFormat::Json;
    /** Per-cell results file (CSV/JSON per @p format). */
    std::string out_file;
    std::string stats_out;
};

/** `hccsim snapshot`: capture (--app ... --out FILE) or inspect
 *  (--inspect FILE). */
struct SnapshotOptions
{
    std::string app;
    SimShape sim;
    /** Unset = the workload's fork_after marker ("auto"). */
    std::optional<snap::ForkPoint> fork_point;
    std::string out_file;
    /** Snapshot file to print instead of capturing. */
    std::string inspect;
};

/** `hccsim stats-diff BASELINE CURRENT`. */
struct StatsDiffOptions
{
    std::string baseline;
    std::string current;
    /** Relative tolerance before a change is drift. */
    double tolerance = 0.0;
};

/** `hccsim crypto-calibrate`. */
struct CryptoCalibrateOptions
{
    /** Wall-clock budget per algorithm, ms. */
    double budget_ms = 50.0;
    std::string stats_out;
};

/** Parsed invocation: the selected command plus its typed options.
 *  Only the struct matching @p command is meaningful. */
struct Options
{
    Command command = Command::Help;
    /** A subcommand `--help` was requested (print help, exit 0). */
    bool show_help = false;
    /** Global log threshold name ("" = leave the default). */
    std::string log_level;
    /** Functional crypto implementation ("" = auto-select). */
    std::string crypto_impl;

    RunOptions run;
    CompareOptions compare;
    TraceOptions trace;
    CriticalOptions critical;
    ProjectOptions project;
    SweepOptions sweep;
    FaultsOptions faults;
    ServeOptions serve;
    SnapshotOptions snapshot;
    StatsDiffOptions stats_diff;
    CryptoCalibrateOptions crypto_calibrate;
};

/**
 * Parse argv (excluding argv[0]).
 * @return the options, or an error message on invalid input.
 */
std::optional<Options> parseArgs(const std::vector<std::string> &args,
                                 std::string &error);

/** Execute a parsed invocation, writing output to @p os.
 *  @return process exit code. */
int runCli(const Options &options, std::ostream &os);

/** The usage/help text. */
std::string usage();

/** Canonical subcommand name ("run", "stats-diff", ...). */
const char *commandName(Command command);

/** Per-subcommand help: the flags that apply to @p command, straight
 *  from the flag table. */
std::string commandHelp(Command command);

} // namespace hcc::cli

#endif // HCC_CLI_OPTIONS_HPP
