/**
 * @file
 * Command-line interface of the `hccsim` tool: list workloads, run
 * one under a chosen configuration, compare base vs CC, export a
 * trace, or drive a fault-injection campaign.  Parsing and execution
 * are library functions so they are unit-testable; tools/hccsim.cpp
 * is a thin main().
 *
 * All subcommands share one declarative flag table (options.cpp): a
 * flag is declared once with the set of subcommands it applies to,
 * so value parsing, "--x requires a value", "--x does not apply to
 * 'cmd'", unknown-flag errors and the per-subcommand `--help` output
 * are uniform by construction.
 */

#ifndef HCC_CLI_OPTIONS_HPP
#define HCC_CLI_OPTIONS_HPP

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace hcc::cli {

/** Supported subcommands. */
enum class Command
{
    List,
    Run,
    Compare,
    Trace,
    Critical,
    Project,
    Sweep,
    Faults,
    StatsDiff,
    CryptoCalibrate,
    Snapshot,
    Help,
};

/** Parsed invocation. */
struct Options
{
    Command command = Command::Help;
    /** Workload name (Run/Compare/Trace). */
    std::string app;
    /** Path to a user spec file (alternative to --app). */
    std::string spec_file;
    /** Run inside a TD with the GPU in CC mode. */
    bool cc = false;
    /** Use the managed-memory (UVM) variant. */
    bool uvm = false;
    /** Problem-size multiplier. */
    double scale = 1.0;
    /** RNG seed. */
    std::uint64_t seed = 42;
    /** Trace export format: "json" (Chrome) or "csv". */
    std::string format = "json";
    /** Parallel encryption workers in the CC transfer path. */
    int crypto_workers = 1;
    /** Model the hypothetical TEE-IO hardware path. */
    bool tee_io = false;
    /**
     * Channel overlap tier (none|double-buffer|speculative).  For
     * sweep and faults this is a comma list (or "all") gridded as its
     * own axis; everywhere else a single tier.  Empty = "none".
     */
    std::string overlap;
    /** Write the run's stats registry as JSON (run/compare/trace). */
    std::string stats_out;
    /** Global log threshold name ("" = leave the default). */
    std::string log_level;
    /** stats-diff: relative tolerance before a drift is flagged. */
    double tolerance = 0.0;
    /** stats-diff: baseline stats dump. */
    std::string diff_baseline;
    /** stats-diff: current stats dump. */
    std::string diff_current;
    /** Functional crypto implementation ("" = auto-select). */
    std::string crypto_impl;
    /** crypto-calibrate: wall-clock budget per algorithm, ms. */
    double calib_ms = 50.0;
    /** sweep: comma-separated app list, or "all". */
    std::string sweep_apps;
    /** sweep: CC modes to grid over (on|off|both). */
    std::string sweep_cc = "both";
    /** sweep: UVM modes to grid over (on|off|both). */
    std::string sweep_uvm = "off";
    /** sweep: comma-separated problem-size multipliers. */
    std::string sweep_scales = "1";
    /** sweep: comma-separated RNG seeds. */
    std::string sweep_seeds = "42";
    /** Worker threads for sweep/compare (0 = hardware default). */
    int jobs = 0;
    /** sweep: per-cell results file (CSV/JSON per --format). */
    std::string out_file;
    /** trace: write the trace to this file instead of stdout. */
    std::string trace_out;
    /** run/compare/trace: "site=rate,..." fault-injection spec. */
    std::string fault_spec;
    /** critical: rows in the contributor/slack report tables. */
    int top = 10;
    /** critical: write the full critical-path JSON to this file. */
    std::string critical_out;
    /** faults: comma-separated fault-site list, or "all". */
    std::string fault_sites = "all";
    /** faults: comma-separated injection rates, each in (0, 1]. */
    std::string fault_rates = "0.01";
    /**
     * sweep/faults/snapshot: prefix/suffix cut spec
     * (none|auto|FRACTION).  Empty keeps the per-command default:
     * sweep forks duplicates automatically ("auto"), faults keeps
     * the original construction-time arming ("none"), snapshot
     * captures at the workload's fork_after marker ("auto").
     */
    std::string fork_point_spec;
    /** sweep/faults: run split cells cold (no snapshot replay). */
    bool no_snapshot = false;
    /** sweep/faults: resident snapshot ceiling in MiB (0 =
     *  unlimited, -1 = flag not given, keep the spec default). */
    int snapshot_budget_mib = -1;
    /** snapshot: inspect this snapshot file instead of capturing. */
    std::string snapshot_in;
    /** A subcommand `--help` was requested (print help, exit 0). */
    bool show_help = false;
};

/**
 * Parse argv (excluding argv[0]).
 * @return the options, or an error message on invalid input.
 */
std::optional<Options> parseArgs(const std::vector<std::string> &args,
                                 std::string &error);

/** Execute a parsed invocation, writing output to @p os.
 *  @return process exit code. */
int runCli(const Options &options, std::ostream &os);

/** The usage/help text. */
std::string usage();

/** Canonical subcommand name ("run", "stats-diff", ...). */
const char *commandName(Command command);

/** Per-subcommand help: the flags that apply to @p command, straight
 *  from the flag table. */
std::string commandHelp(Command command);

} // namespace hcc::cli

#endif // HCC_CLI_OPTIONS_HPP
