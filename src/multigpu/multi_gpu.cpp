#include "multigpu/multi_gpu.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::multigpu {

MultiGpuSystem::MultiGpuSystem(const MultiGpuConfig &config)
    : config_(config), tdx_(config.cc)
{
    if (config_.gpus < 2)
        fatal("multi-GPU system needs at least 2 GPUs, got %d",
              config_.gpus);
    links_.reserve(static_cast<std::size_t>(config_.gpus));
    for (int i = 0; i < config_.gpus; ++i) {
        links_.push_back(
            std::make_unique<pcie::PcieLink>(config_.link));
        p2p_lanes_.emplace_back("p2p[" + std::to_string(i) + "]");
        if (config_.cc) {
            channels_.push_back(std::make_unique<tee::SecureChannel>(
                config_.channel,
                tee::SpdmSession::establish(
                    config_.seed
                    + static_cast<std::uint64_t>(i))));
        }
    }
}

pcie::PcieLink &
MultiGpuSystem::link(int gpu)
{
    HCC_ASSERT(gpu >= 0 && gpu < config_.gpus, "bad gpu index");
    return *links_[static_cast<std::size_t>(gpu)];
}

tee::SecureChannel &
MultiGpuSystem::channel(int gpu)
{
    HCC_ASSERT(config_.cc, "no channels outside CC mode");
    HCC_ASSERT(gpu >= 0 && gpu < config_.gpus, "bad gpu index");
    return *channels_[static_cast<std::size_t>(gpu)];
}

PeerTiming
MultiGpuSystem::peerCopy(int src_gpu, int dst_gpu, Bytes bytes,
                         SimTime ready)
{
    if (src_gpu == dst_gpu)
        fatal("peer copy needs two distinct GPUs");

    PeerTiming t;
    if (!config_.cc) {
        // Direct PCIe P2P on the source's dedicated lane.
        const SimTime dur = config_.link.dma_latency
            + transferTime(bytes, config_.p2p_gbps);
        const auto iv =
            p2p_lanes_[static_cast<std::size_t>(src_gpu)].reserve(
                ready, dur);
        t.total = iv;
        return t;
    }

    // CC: the GPU is bound to one TD; peers cannot DMA each other.
    // Data leaves the source through the encrypted D2H path into
    // TD-private memory, then re-enters the destination through the
    // encrypted H2D path.
    const auto down = channel(src_gpu).scheduleTransfer(
        ready, bytes, pcie::Direction::DeviceToHost, link(src_gpu),
        tdx_);
    const auto up = channel(dst_gpu).scheduleTransfer(
        down.total.end, bytes, pcie::Direction::HostToDevice,
        link(dst_gpu), tdx_);
    t.total = {ready, up.total.end};
    t.host_staged = bytes;
    return t;
}

PeerTiming
MultiGpuSystem::allReduce(Bytes bytes, SimTime ready)
{
    // Ring all-reduce: 2*(N-1) steps, each moving bytes/N between
    // every neighbour pair simultaneously.  Steps are barriers: the
    // slowest pair gates the next step.
    const int n = config_.gpus;
    const Bytes chunk =
        std::max<Bytes>(1, bytes / static_cast<Bytes>(n));
    PeerTiming t;
    SimTime step_ready = ready;
    for (int step = 0; step < 2 * (n - 1); ++step) {
        SimTime step_end = step_ready;
        if (!config_.cc) {
            for (int g = 0; g < n; ++g) {
                const auto leg =
                    peerCopy(g, (g + 1) % n, chunk, step_ready);
                step_end = std::max(step_end, leg.total.end);
            }
        } else {
            // Schedule every leg's D2H half before any H2D half so
            // the per-channel crypto workers interleave both
            // directions within the step (the reservation order
            // would otherwise serialize them).
            std::vector<SimTime> down_done(
                static_cast<std::size_t>(n));
            for (int g = 0; g < n; ++g) {
                const auto down = channel(g).scheduleTransfer(
                    step_ready, chunk,
                    pcie::Direction::DeviceToHost, link(g), tdx_);
                down_done[static_cast<std::size_t>(g)] =
                    down.total.end;
            }
            for (int g = 0; g < n; ++g) {
                const int dst = (g + 1) % n;
                const auto up = channel(dst).scheduleTransfer(
                    down_done[static_cast<std::size_t>(g)], chunk,
                    pcie::Direction::HostToDevice, link(dst), tdx_);
                step_end = std::max(step_end, up.total.end);
                t.host_staged += chunk;
            }
        }
        step_ready = step_end;
    }
    t.total = {ready, step_ready};
    return t;
}

PeerTiming
MultiGpuSystem::broadcast(Bytes bytes, SimTime ready)
{
    // Chain broadcast 0 -> 1 -> ... -> N-1.
    PeerTiming t;
    SimTime cursor = ready;
    for (int g = 0; g + 1 < config_.gpus; ++g) {
        const auto leg = peerCopy(g, g + 1, bytes, cursor);
        cursor = leg.total.end;
        t.host_staged += leg.host_staged;
    }
    t.total = {ready, cursor};
    return t;
}

} // namespace hcc::multigpu
