/**
 * @file
 * Multi-GPU system model (Sec. VIII / [83], [132]).
 *
 * The platform hosts two H100s on separate sockets (Table I).  In
 * normal operation peers exchange data directly over PCIe P2P; in CC
 * mode the H100 is exclusively bound to one TD and P2P is
 * unavailable — peer traffic must bounce through TD-private host
 * memory, paying the encrypted D2H path on the source and the
 * encrypted H2D path on the destination.  This module models peer
 * copies and ring collectives under both regimes, quantifying the
 * multi-GPU CC tax the paper's related-work section points at.
 */

#ifndef HCC_MULTIGPU_MULTI_GPU_HPP
#define HCC_MULTIGPU_MULTI_GPU_HPP

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "pcie/link.hpp"
#include "tee/secure_channel.hpp"
#include "tee/tdx.hpp"

namespace hcc::multigpu {

/** Configuration of the multi-GPU system. */
struct MultiGpuConfig
{
    /** Number of GPUs (>= 2). */
    int gpus = 2;
    /** Whole system in CC mode. */
    bool cc = false;
    /** Effective PCIe P2P bandwidth between peers (GB/s). */
    double p2p_gbps = 20.0;
    /** Per-link configuration (one link per GPU). */
    pcie::LinkConfig link;
    /** Channel tunables for the CC paths. */
    tee::ChannelConfig channel;
    std::uint64_t seed = 7;
};

/** Timing result of a peer copy or collective. */
struct PeerTiming
{
    sim::Interval total;
    /** Bytes that crossed host memory (0 for direct P2P). */
    Bytes host_staged = 0;
};

/**
 * N GPUs attached to one host.
 */
class MultiGpuSystem
{
  public:
    explicit MultiGpuSystem(const MultiGpuConfig &config);

    /**
     * Copy @p bytes from @p src_gpu to @p dst_gpu starting at
     * @p ready.  Direct P2P normally; encrypted double-bounce through
     * the host under CC.
     */
    PeerTiming peerCopy(int src_gpu, int dst_gpu, Bytes bytes,
                        SimTime ready);

    /**
     * Ring all-reduce of @p bytes per GPU: 2*(N-1) peer transfers of
     * bytes/N per step, steps overlapping across ring neighbours.
     */
    PeerTiming allReduce(Bytes bytes, SimTime ready);

    /** Broadcast @p bytes from GPU 0 to all others (chain). */
    PeerTiming broadcast(Bytes bytes, SimTime ready);

    int gpuCount() const { return config_.gpus; }
    bool cc() const { return config_.cc; }
    const tee::TdxStats &tdxStats() const { return tdx_.stats(); }

  private:
    pcie::PcieLink &link(int gpu);
    tee::SecureChannel &channel(int gpu);

    MultiGpuConfig config_;
    tee::TdxModule tdx_;
    std::vector<std::unique_ptr<pcie::PcieLink>> links_;
    std::vector<std::unique_ptr<tee::SecureChannel>> channels_;
    /** Dedicated P2P lanes between ring neighbours (non-CC). */
    std::vector<sim::Timeline> p2p_lanes_;
};

} // namespace hcc::multigpu

#endif // HCC_MULTIGPU_MULTI_GPU_HPP
