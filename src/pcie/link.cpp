#include "pcie/link.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::pcie {

PcieLink::PcieLink(const LinkConfig &config)
    : config_(config), h2d_("pcie.h2d"), d2h_("pcie.d2h")
{
    if (config_.effective_gbps <= 0.0)
        fatal("pcie link bandwidth must be positive");
}

sim::Timeline &
PcieLink::lane(Direction dir)
{
    return dir == Direction::HostToDevice ? h2d_ : d2h_;
}

const sim::Timeline &
PcieLink::lane(Direction dir) const
{
    return dir == Direction::HostToDevice ? h2d_ : d2h_;
}

SimTime
PcieLink::dmaDuration(Bytes bytes, double gbps) const
{
    const double rate = gbps > 0.0
        ? std::min(gbps, config_.effective_gbps)
        : config_.effective_gbps;
    return config_.dma_latency + transferTime(bytes, rate);
}

sim::Interval
PcieLink::dma(SimTime ready, Bytes bytes, Direction dir, double gbps)
{
    return lane(dir).reserve(ready, dmaDuration(bytes, gbps));
}

SimTime
PcieLink::busyTime(Direction dir) const
{
    return lane(dir).busyTime();
}

std::size_t
PcieLink::transactions(Direction dir) const
{
    return lane(dir).reservations();
}

void
PcieLink::reset()
{
    h2d_.reset();
    d2h_.reset();
}

} // namespace hcc::pcie
