#include "pcie/link.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fault/fault.hpp"

namespace hcc::pcie {

PcieLink::PcieLink(const LinkConfig &config, obs::Registry *obs,
                   fault::Injector *fault)
    : config_(config), h2d_("pcie.h2d"), d2h_("pcie.d2h"),
      obs_(obs), fault_(fault)
{
    if (config_.effective_gbps <= 0.0)
        fatal("pcie link bandwidth must be positive");
    if (obs) {
        obs_h2d_.transactions =
            &obs->counter("pcie.link.transactions_h2d");
        obs_h2d_.bytes = &obs->counter("pcie.link.bytes_h2d");
        obs_h2d_.busy_ps = &obs->counter("pcie.link.busy_ps_h2d");
        obs_d2h_.transactions =
            &obs->counter("pcie.link.transactions_d2h");
        obs_d2h_.bytes = &obs->counter("pcie.link.bytes_d2h");
        obs_d2h_.busy_ps = &obs->counter("pcie.link.busy_ps_d2h");
    }
}

sim::Timeline &
PcieLink::lane(Direction dir)
{
    return dir == Direction::HostToDevice ? h2d_ : d2h_;
}

const sim::Timeline &
PcieLink::lane(Direction dir) const
{
    return dir == Direction::HostToDevice ? h2d_ : d2h_;
}

SimTime
PcieLink::dmaDuration(Bytes bytes, double gbps) const
{
    const double rate = gbps > 0.0
        ? std::min(gbps, config_.effective_gbps)
        : config_.effective_gbps;
    return config_.dma_latency + transferTime(bytes, rate);
}

sim::Interval
PcieLink::dma(SimTime ready, Bytes bytes, Direction dir, double gbps)
{
    SimTime duration = dmaDuration(bytes, gbps);
    SimTime replay_extra = 0;
    if (fault_ && fault_->shouldInject(fault::Site::PcieReplay)) {
        // Link-layer replay: the whole payload goes over the wire
        // again (another dmaDuration) plus a fixed recovery penalty,
        // all inside this transaction's occupancy.
        replay_extra = dmaDuration(bytes, gbps)
            + fault::kPcieReplayLatency;
        duration += replay_extra;
    }
    const sim::Interval iv = lane(dir).reserve(ready, duration);
    if (replay_extra > 0)
        fault_->recordRecoverySpan(fault::Site::PcieReplay,
                                   iv.end - replay_extra, iv.end);
    DirStats &stats =
        dir == Direction::HostToDevice ? obs_h2d_ : obs_d2h_;
    if (stats.transactions) {
        stats.transactions->add(1);
        stats.bytes->add(bytes);
        stats.busy_ps->add(static_cast<std::uint64_t>(iv.duration()));
        if (replay_extra > 0) {
            // The replayed payload went over the wire a second time;
            // account it separately so bytes_* keeps counting the
            // logical payload exactly once.
            if (!stats.replay_bytes)
                stats.replay_bytes = &obs_->counter(
                    dir == Direction::HostToDevice
                        ? "pcie.link.replay_bytes_h2d"
                        : "pcie.link.replay_bytes_d2h");
            stats.replay_bytes->add(bytes);
        }
    }
    return iv;
}

SimTime
PcieLink::busyTime(Direction dir) const
{
    return lane(dir).busyTime();
}

std::size_t
PcieLink::transactions(Direction dir) const
{
    return lane(dir).reservations();
}

void
PcieLink::reset()
{
    h2d_.reset();
    d2h_.reset();
}

} // namespace hcc::pcie
