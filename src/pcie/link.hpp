/**
 * @file
 * PCIe interconnect model.
 *
 * A full-duplex point-to-point link (Table I: PCIe 5.0 x16) with one
 * timeline per direction.  DMA payload time is bandwidth-limited;
 * every transaction additionally pays a fixed round-trip latency,
 * which is what bends the Fig. 4a bandwidth curve down for small
 * transfer sizes.
 */

#ifndef HCC_PCIE_LINK_HPP
#define HCC_PCIE_LINK_HPP

#include <cstdint>

#include "common/units.hpp"
#include "obs/registry.hpp"
#include "sim/timeline.hpp"

namespace hcc::fault { class Injector; }

namespace hcc::pcie {

/** Transfer direction over the link. */
enum class Direction { HostToDevice, DeviceToHost };

/** Static link parameters. */
struct LinkConfig
{
    /** PCIe generation (informational). */
    int gen = 5;
    /** Lane count (informational). */
    int lanes = 16;
    /** Effective DMA bandwidth for pinned pages, GB/s. */
    double effective_gbps = 26.0;
    /** Fixed per-DMA-transaction latency (doorbell to first data). */
    SimTime dma_latency = time::us(1.2);
};

/**
 * The link: owns one timeline per direction and converts byte counts
 * into occupancy intervals.
 */
class PcieLink
{
  public:
    /**
     * @p obs (optional) receives per-direction DMA stats under
     * "pcie.link.{transactions,bytes,busy_ps}_{h2d,d2h}", plus
     * "pcie.link.replay_bytes_{h2d,d2h}" (lazily, on the first
     * injected replay) counting payload bytes retransmitted by the
     * pcie.replay fault site.
     * @p fault (optional) arms the "pcie.replay" fault site: an
     * injected replay retransmits the payload and pays a fixed
     * link-layer penalty inside the granted interval.
     */
    explicit PcieLink(const LinkConfig &config = LinkConfig{},
                      obs::Registry *obs = nullptr,
                      fault::Injector *fault = nullptr);

    /**
     * Schedule a DMA of @p bytes in @p dir becoming ready at
     * @p ready, possibly at a throttled @p gbps (e.g. a CC pipeline
     * feeding the link slower than line rate).  @p gbps <= 0 means
     * line rate.
     * @return the granted link interval (includes the fixed latency).
     */
    sim::Interval dma(SimTime ready, Bytes bytes, Direction dir,
                      double gbps = 0.0);

    /** Pure duration of a DMA of @p bytes (latency + payload). */
    SimTime dmaDuration(Bytes bytes, double gbps = 0.0) const;

    const LinkConfig &config() const { return config_; }

    /** Accumulated busy time in a direction. */
    SimTime busyTime(Direction dir) const;

    /** Number of DMA transactions issued in a direction. */
    std::size_t transactions(Direction dir) const;

    void reset();

    /** Snapshot support: both direction timelines.  The lazily
     *  created replay counters may post-date the capture — the
     *  registry erases such entries on restore, so drop the handles
     *  and let the next replay re-create them (same contract as
     *  fault::Injector::snapState). */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        h2d_.snapState(ar);
        d2h_.snapState(ar);
        if constexpr (Ar::kLoading) {
            obs_h2d_.replay_bytes = nullptr;
            obs_d2h_.replay_bytes = nullptr;
        }
    }

  private:
    sim::Timeline &lane(Direction dir);
    const sim::Timeline &lane(Direction dir) const;

    /** Per-direction stat bundle (nullptrs when unattached). */
    struct DirStats
    {
        obs::Counter *transactions = nullptr;
        obs::Counter *bytes = nullptr;
        obs::Counter *busy_ps = nullptr;
        /**
         * Payload bytes re-sent by injected pcie.replay faults.
         * Kept out of `bytes` (which counts the logical payload
         * once) so bytes/busy utilization derivations can subtract
         * the replay traffic explicitly.  Created lazily on the
         * first replay so unarmed runs keep their stats dumps
         * byte-identical.
         */
        obs::Counter *replay_bytes = nullptr;
    };

    LinkConfig config_;
    sim::Timeline h2d_;
    sim::Timeline d2h_;
    DirStats obs_h2d_;
    DirStats obs_d2h_;
    obs::Registry *obs_ = nullptr;
    fault::Injector *fault_ = nullptr;
};

} // namespace hcc::pcie

#endif // HCC_PCIE_LINK_HPP
