#include "snap/fork.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/registry.hpp"
#include "snap/snap.hpp"
#include "trace/critpath.hpp"

namespace hcc::snap {

namespace {

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Everything runWorkload() does after the workload body: throughput
 * gauge, one-pass metrics + critical path, TDX stats.  The split
 * modes replicate it per cell so a forked cell's WorkloadResult
 * matches a cold runWorkload()'s in every field a campaign consumes.
 *
 * Split-mode results are deliberately *light*: the trace is analyzed
 * in place and `result.trace` stays empty (only `--fork-point none`
 * retains per-cell traces).  That keeps a 10k-cell campaign's memory
 * flat, and in fork mode it leaves the tracer's chunk pages and
 * intern table allocated so the next cell's restore is a plain
 * in-place overwrite instead of a reallocation.  The per-event slack
 * pass and the segment list are skipped too — no campaign output
 * reads them.
 *
 * In fork mode the group's cells share one live registry, and the
 * next cell's restore rewinds it to the fork point — so the result
 * deep-copies the registry instead of sharing it.  Cold cells own
 * their registry and share it out of the dying Context, exactly like
 * runWorkload().  @p analyzer (fork mode only) reuses the group's
 * prefix scan so each cell pays for its suffix, not the full trace.
 */
workloads::WorkloadResult
collectCellResult(rt::Context &ctx, const workloads::Workload &w,
                  const workloads::WorkloadParams &params, bool cc,
                  std::chrono::steady_clock::time_point wall_start,
                  bool clone_stats,
                  trace::ForkAnalyzer *analyzer = nullptr)
{
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();
    if (wall_s > 0.0 && !ctx.tracer().empty()) {
        ctx.obs()
            .gauge("host.sim.events_per_sec")
            .set(static_cast<std::int64_t>(
                     static_cast<double>(ctx.tracer().size()) / wall_s),
                 -1);
    }

    workloads::WorkloadResult result;
    result.name = w.name();
    result.cc = cc;
    result.uvm = params.uvm;
    auto crit = analyzer != nullptr
        ? analyzer->analyze(ctx.tracer(), &ctx.obs())
        : trace::analyzeCritical(ctx.tracer(), &ctx.obs(),
                                 /*with_slack=*/false);
    result.metrics = std::move(crit.metrics);
    // Light metrics for both arms: campaign writers only read the
    // integer counts and the sample sums, so collapse each sample
    // vector to its total (the analyzer already returns them
    // compacted; this makes the cold arm byte-identical).
    trace::compactSampleMetrics(result.metrics);
    result.critical = std::move(crit.path);
    // The cold arm materializes segments (the analyzer never does);
    // drop them for the same light-result contract either way.
    result.critical.segments.clear();
    result.critical.segments.shrink_to_fit();
    trace::publishCriticalPath(result.critical, ctx.obs());
    result.tdx = ctx.tdx().stats();
    result.end_to_end = result.metrics.end_to_end;
    result.stats = clone_stats
        ? std::shared_ptr<obs::Registry>(ctx.obs().clone())
        : ctx.obsPtr();
    return result;
}

/** Legacy mode: construction-time arming, full runWorkload(). */
void
runLegacyCell(const ForkGroupSpec &group, const ForkCell &cell,
              ForkCellOutcome &out)
{
    const auto start = std::chrono::steady_clock::now();
    try {
        rt::SystemConfig sys = group.sys;
        sys.faults = cell.faults;
        out.result =
            workloads::runWorkload(group.app, sys, group.params);
        out.ok = true;
    } catch (const FatalError &e) {
        out.error = e.what();
    }
    out.wall_us = elapsedUs(start);
}

/** Cold-split mode: own Context, full prefix, arm, suffix. */
void
runColdSplitCell(const workloads::Workload &w,
                 const ForkGroupSpec &group, const ForkCell &cell,
                 double fraction, ForkCellOutcome &out)
{
    const auto start = std::chrono::steady_clock::now();
    try {
        rt::SystemConfig sys = group.sys;
        sys.faults = fault::FaultConfig{};
        rt::Context ctx(sys);
        {
            obs::ProfileScope profile(&ctx.obs(), "workload_run");
            const auto resume =
                w.runPrefix(ctx, group.params, fraction);
            ctx.armFaults(cell.faults);
            w.runSuffix(ctx, group.params, *resume);
        }
        out.result = collectCellResult(ctx, w, group.params,
                                       group.sys.cc, start,
                                       /*clone_stats=*/false);
        out.ok = true;
    } catch (const FatalError &e) {
        out.error = e.what();
    }
    out.wall_us = elapsedUs(start);
}

} // namespace

double
ForkPoint::resolve(const workloads::Workload &workload) const
{
    if (mode == Mode::None || !workload.forkable())
        return -1.0;
    const double f = mode == Mode::Auto ? workload.defaultForkPoint()
                                        : fraction;
    return std::clamp(f, 0.0, 1.0);
}

std::string
ForkPoint::str() const
{
    switch (mode) {
      case Mode::None: return "none";
      case Mode::Auto: return "auto";
      case Mode::Fraction: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", fraction);
          return buf;
      }
    }
    return "none";
}

Result<ForkPoint>
parseForkPoint(const std::string &text)
{
    ForkPoint fp;
    if (text == "none") {
        fp.mode = ForkPoint::Mode::None;
        return fp;
    }
    if (text == "auto") {
        fp.mode = ForkPoint::Mode::Auto;
        return fp;
    }
    double v = 0.0;
    try {
        std::size_t pos = 0;
        v = std::stod(text, &pos);
        if (pos != text.size())
            throw std::invalid_argument(text);
    } catch (...) {
        return errorf(ErrorCode::ParseError,
                      "bad fork point '%s' (none|auto|fraction)",
                      text.c_str());
    }
    if (v < 0.0 || v > 1.0)
        return errorf(ErrorCode::ParseError,
                      "fork point fraction %g out of [0, 1]", v);
    fp.mode = ForkPoint::Mode::Fraction;
    fp.fraction = v;
    return fp;
}

ForkGroupOutcome
runForkGroup(const ForkGroupSpec &group, const ForkPoint &fork_point,
             bool no_snapshot)
{
    ForkGroupOutcome out;
    out.cells.resize(group.cells.size());
    if (group.cells.empty())
        return out;

    const workloads::Workload *w =
        workloads::WorkloadRegistry::instance().find(group.app);

    // Unknown app / unsupported UVM fail every cell through the
    // legacy path's own error handling (one message per cell keeps
    // the per-cell reporting contract of the callers).
    const bool splittable =
        w != nullptr && !(group.params.uvm && !w->supportsUvm());
    const double fraction =
        splittable ? fork_point.resolve(*w) : -1.0;
    if (fraction < 0.0) {
        for (std::size_t i = 0; i < group.cells.size(); ++i)
            runLegacyCell(group, group.cells[i], out.cells[i]);
        return out;
    }

    if (no_snapshot || group.cells.size() == 1) {
        // Cold-split: same arming point as fork mode, no shared
        // state.  Also the right call for singleton groups, where a
        // snapshot would only add capture/restore overhead.
        for (std::size_t i = 0; i < group.cells.size(); ++i)
            runColdSplitCell(*w, group, group.cells[i], fraction,
                             out.cells[i]);
        return out;
    }

    // Fork mode: one Context, one prefix, N suffix replays.
    rt::SystemConfig sys = group.sys;
    sys.faults = fault::FaultConfig{};
    rt::Context ctx(sys);

    Snapshot snapshot;
    try {
        std::unique_ptr<workloads::Workload::Resume> resume;
        {
            obs::ProfileScope profile(&ctx.obs(), "fork_prefix");
            resume = w->runPrefix(ctx, group.params, fraction);
        }
        ctx.captureSnapshot(snapshot);
        snapshot.meta.app = group.app;
        snapshot.meta.uvm = group.params.uvm;
        snapshot.meta.fork_point = fork_point.str();
        // One prefix scan for the whole group; each cell's analysis
        // then costs its suffix only.
        trace::ForkAnalyzer analyzer;
        analyzer.capture(ctx.tracer());

        for (std::size_t i = 0; i < group.cells.size(); ++i) {
            ForkCellOutcome &cell_out = out.cells[i];
            const auto start = std::chrono::steady_clock::now();
            try {
                ctx.restoreSnapshot(snapshot);
                ctx.armFaults(group.cells[i].faults);
                {
                    obs::ProfileScope profile(&ctx.obs(),
                                              "workload_run");
                    w->runSuffix(ctx, group.params, *resume);
                }
                cell_out.result = collectCellResult(
                    ctx, *w, group.params, group.sys.cc, start,
                    /*clone_stats=*/true, &analyzer);
                cell_out.ok = true;
            } catch (const FatalError &e) {
                cell_out.error = e.what();
            }
            cell_out.wall_us = elapsedUs(start);
            cell_out.from_snapshot = true;
            ++out.snapshot_hits;
        }
    } catch (const FatalError &e) {
        // Prefix (or capture) died: every cell inherits the error.
        for (auto &cell_out : out.cells) {
            if (!cell_out.ok && cell_out.error.empty())
                cell_out.error = e.what();
        }
    }
    return out;
}

} // namespace hcc::snap
