#include "snap/fork.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/registry.hpp"
#include "snap/snap.hpp"
#include "trace/critpath.hpp"

namespace hcc::snap {

namespace {

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Everything runWorkload() does after the workload body: throughput
 * gauge, one-pass metrics + critical path, TDX stats.  The split
 * modes replicate it per cell so a forked cell's WorkloadResult
 * matches a cold runWorkload()'s in every field a campaign consumes.
 *
 * Split-mode results are deliberately *light*: the trace is analyzed
 * in place and `result.trace` stays empty (only `--fork-point none`
 * retains per-cell traces).  That keeps a 10k-cell campaign's memory
 * flat, and in fork mode it leaves the tracer's chunk pages and
 * intern table allocated so the next cell's restore is a plain
 * in-place overwrite instead of a reallocation.  The per-event slack
 * pass and the segment list are skipped too — no campaign output
 * reads them.
 *
 * In fork mode the group's cells share one live registry, and the
 * next cell's restore rewinds it to the fork point — so the result
 * deep-copies the registry instead of sharing it.  Cold cells own
 * their registry and share it out of the dying Context, exactly like
 * runWorkload().  @p analyzer (fork mode only) reuses the group's
 * prefix scan so each cell pays for its suffix, not the full trace.
 */
workloads::WorkloadResult
collectCellResult(rt::Context &ctx, const workloads::Workload &w,
                  const workloads::WorkloadParams &params, bool cc,
                  std::chrono::steady_clock::time_point wall_start,
                  bool clone_stats,
                  trace::ForkAnalyzer *analyzer = nullptr)
{
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - wall_start)
            .count();
    if (wall_s > 0.0 && !ctx.tracer().empty()) {
        ctx.obs()
            .gauge("host.sim.events_per_sec")
            .set(static_cast<std::int64_t>(
                     static_cast<double>(ctx.tracer().size()) / wall_s),
                 -1);
    }

    workloads::WorkloadResult result;
    result.name = w.name();
    result.cc = cc;
    result.uvm = params.uvm;
    auto crit = analyzer != nullptr
        ? analyzer->analyze(ctx.tracer(), &ctx.obs())
        : trace::analyzeCritical(ctx.tracer(), &ctx.obs(),
                                 /*with_slack=*/false);
    result.metrics = std::move(crit.metrics);
    // Light metrics for both arms: campaign writers only read the
    // integer counts and the sample sums, so collapse each sample
    // vector to its total (the analyzer already returns them
    // compacted; this makes the cold arm byte-identical).
    trace::compactSampleMetrics(result.metrics);
    result.critical = std::move(crit.path);
    // The cold arm materializes segments (the analyzer never does);
    // drop them for the same light-result contract either way.
    result.critical.segments.clear();
    result.critical.segments.shrink_to_fit();
    trace::publishCriticalPath(result.critical, ctx.obs());
    result.tdx = ctx.tdx().stats();
    result.end_to_end = result.metrics.end_to_end;
    result.stats = clone_stats
        ? std::shared_ptr<obs::Registry>(ctx.obs().clone())
        : ctx.obsPtr();
    return result;
}

/**
 * Legacy mode: construction-time arming, full runWorkload().  Reseed
 * arms degrade to a plain construction seed (the last one wins) so a
 * cross-seed group falling back to legacy still runs each cell under
 * its own seed; intermediate Faults arms have no construction-time
 * equivalent and are subsumed by the cell's own fault config.
 */
void
runLegacyCell(const ForkGroupSpec &group, const ForkCell &cell,
              ForkCellOutcome &out)
{
    const auto start = std::chrono::steady_clock::now();
    try {
        rt::SystemConfig sys = group.sys;
        workloads::WorkloadParams params = group.params;
        for (const ForkArm &arm : cell.arms) {
            if (arm.kind == ForkArm::Kind::Reseed) {
                sys.seed = arm.seed;
                params.seed = arm.seed;
            }
        }
        sys.faults = cell.faults;
        out.result = workloads::runWorkload(group.app, sys, params);
        out.ok = true;
    } catch (const FatalError &e) {
        out.error = e.what();
    }
    out.wall_us = elapsedUs(start);
}

/**
 * Apply one arm at the current cut of @p ctx.  Reseed arms switch the
 * Context's seed-derived streams to the cell seed (exactly the state
 * a fresh Context constructed with it would hold) and re-derive the
 * workload-local resume streams; Faults arms re-arm the injector.
 * @return the resume to continue from (@p reseeded keeps a re-derived
 * resume alive when the workload produced one).
 */
const workloads::Workload::Resume *
applyArm(rt::Context &ctx, const workloads::Workload &w,
         const ForkArm &arm, workloads::WorkloadParams &params,
         const workloads::Workload::Resume *resume,
         std::unique_ptr<workloads::Workload::Resume> &reseeded)
{
    if (arm.kind == ForkArm::Kind::Faults) {
        ctx.armFaults(arm.faults);
        return resume;
    }
    ctx.reseedAtFork(arm.seed);
    params.seed = arm.seed;
    if (auto r = w.reseedResume(*resume, params)) {
        reseeded = std::move(r);
        return reseeded.get();
    }
    return resume;
}

/** Cold-split mode: own Context, full prefix + arm/segment chain,
 *  arm, suffix.  The exact derivation fork mode replays. */
void
runColdSplitCell(const workloads::Workload &w,
                 const ForkGroupSpec &group, const ForkCell &cell,
                 const std::vector<double> &cuts, ForkCellOutcome &out)
{
    const auto start = std::chrono::steady_clock::now();
    try {
        rt::SystemConfig sys = group.sys;
        sys.faults = fault::FaultConfig{};
        rt::Context ctx(sys);
        workloads::WorkloadParams params = group.params;
        {
            obs::ProfileScope profile(&ctx.obs(), "workload_run");
            std::unique_ptr<workloads::Workload::Resume> owned =
                w.runPrefix(ctx, params, cuts[0]);
            const workloads::Workload::Resume *resume = owned.get();
            std::unique_ptr<workloads::Workload::Resume> reseeded;
            for (std::size_t d = 1; d < cuts.size(); ++d) {
                if (d - 1 < cell.arms.size())
                    resume = applyArm(ctx, w, cell.arms[d - 1],
                                      params, resume, reseeded);
                auto next = w.runSegment(ctx, params, *resume,
                                         cuts[d]);
                owned = std::move(next);
                resume = owned.get();
            }
            if (cell.arms.size() == cuts.size())
                resume = applyArm(ctx, w, cell.arms.back(), params,
                                  resume, reseeded);
            ctx.armFaults(cell.faults);
            w.runSuffix(ctx, params, *resume);
        }
        out.result = collectCellResult(ctx, w, params, group.sys.cc,
                                       start,
                                       /*clone_stats=*/false);
        out.ok = true;
    } catch (const FatalError &e) {
        out.error = e.what();
    }
    out.wall_us = elapsedUs(start);
}

/** Stable key for grouping cells by arm: equal keys share a node. */
std::string
armKey(const ForkArm &arm)
{
    if (arm.kind == ForkArm::Kind::Reseed)
        return "r:" + std::to_string(arm.seed);
    std::string key = "f";
    char buf[48];
    for (std::size_t i = 0; i < arm.faults.rates.size(); ++i) {
        if (arm.faults.rates[i] == 0.0)
            continue;
        std::snprintf(buf, sizeof(buf), ":%zu=%.17g", i,
                      arm.faults.rates[i]);
        key += buf;
    }
    return key;
}

/**
 * The fork-mode executor: a trie over the cells' arm paths, walked
 * depth-first on one Context.  Each node owns the snapshot, resume
 * state and incremental analyzer of "the run up to cuts[depth] with
 * this arm path applied"; leaves replay their suffix from the
 * deepest node they share.  Snapshots are released when a node's
 * subtree completes and evicted LRU under the byte budget; an
 * evicted node is rematerialized from its nearest resident ancestor
 * (restore, re-arm, re-run the segment), which reproduces identical
 * state, so eviction can never change results.
 */
class TreeRunner
{
  public:
    TreeRunner(const ForkGroupSpec &group,
               const workloads::Workload &w, std::vector<double> cuts,
               const std::string &fork_point_str,
               ForkGroupOutcome &out)
        : group_(group), w_(w), cuts_(std::move(cuts)),
          fork_point_str_(fork_point_str), out_(out),
          budget_(group.snapshot_budget_bytes == 0
                      ? std::numeric_limits<std::size_t>::max()
                      : group.snapshot_budget_bytes)
    {
    }

    void
    run()
    {
        buildTrie();
        rt::SystemConfig sys = group_.sys;
        sys.faults = fault::FaultConfig{};
        ctx_ = std::make_unique<rt::Context>(sys);
        try {
            {
                obs::ProfileScope profile(&ctx_->obs(),
                                          "fork_prefix");
                root_->resume =
                    w_.runPrefix(*ctx_, group_.params, cuts_[0]);
            }
            captureNode(*root_);
            root_->analyzer =
                std::make_unique<trace::ForkAnalyzer>();
            root_->analyzer->capture(ctx_->tracer());
            process(*root_);
        } catch (const FatalError &e) {
            // Prefix (or capture) died: every cell inherits the
            // error.
            for (auto &cell_out : out_.cells) {
                if (!cell_out.ok && cell_out.error.empty())
                    cell_out.error = e.what();
            }
        }
        out_.peak_resident_bytes = peak_;
    }

  private:
    struct TreeNode
    {
        const ForkArm *arm = nullptr; //!< applied entering this node
        TreeNode *parent = nullptr;
        std::size_t depth = 0; //!< state is at cuts_[depth]
        std::string label;     //!< arm path, for snapshot meta
        std::vector<std::string> child_keys;
        std::vector<std::unique_ptr<TreeNode>> children;
        std::vector<std::size_t> leaves; //!< cell indices replaying
                                         //!< their suffix from here
        // Runtime state, valid once materialized:
        workloads::WorkloadParams params;
        std::unique_ptr<Snapshot> snap;
        std::unique_ptr<workloads::Workload::Resume> resume;
        std::unique_ptr<trace::ForkAnalyzer> analyzer;
        std::uint64_t last_use = 0;
    };

    void
    buildTrie()
    {
        root_ = std::make_unique<TreeNode>();
        root_->params = group_.params;
        root_->label = "prefix";
        nodes_.push_back(root_.get());
        for (std::size_t i = 0; i < group_.cells.size(); ++i) {
            const ForkCell &cell = group_.cells[i];
            TreeNode *cur = root_.get();
            for (std::size_t d = 1; d < cuts_.size(); ++d) {
                const ForkArm *arm =
                    d - 1 < cell.arms.size() ? &cell.arms[d - 1]
                                             : nullptr;
                const std::string key = arm ? armKey(*arm) : "";
                const auto it = std::find(cur->child_keys.begin(),
                                          cur->child_keys.end(), key);
                if (it == cur->child_keys.end()) {
                    auto node = std::make_unique<TreeNode>();
                    node->arm = arm;
                    node->parent = cur;
                    node->depth = d;
                    node->label = cur->label + "/"
                        + (key.empty() ? "-" : key);
                    cur->child_keys.push_back(key);
                    nodes_.push_back(node.get());
                    cur->children.push_back(std::move(node));
                    cur = cur->children.back().get();
                } else {
                    cur = cur->children
                              [static_cast<std::size_t>(
                                   it - cur->child_keys.begin())]
                                  .get();
                }
            }
            cur->leaves.push_back(i);
        }
    }

    /** Leaves first, then subtrees; release the node's snapshot once
     *  its whole subtree is done (the refcount reaches zero). */
    void
    process(TreeNode &node)
    {
        for (const std::size_t i : node.leaves)
            runLeaf(node, i);
        for (const auto &child : node.children)
            process(*child);
        if (node.parent != nullptr)
            dropSnapshot(node);
    }

    void
    runLeaf(TreeNode &node, std::size_t index)
    {
        ForkCellOutcome &out = out_.cells[index];
        const auto start = std::chrono::steady_clock::now();
        try {
            ensureResident(node);
            ctx_->restoreSnapshot(*node.snap);
            node.last_use = ++clock_;
            workloads::WorkloadParams params = node.params;
            const ForkCell &cell = group_.cells[index];
            const workloads::Workload::Resume *resume =
                node.resume.get();
            std::unique_ptr<workloads::Workload::Resume> reseeded;
            if (cell.arms.size() == cuts_.size())
                resume = applyArm(*ctx_, w_, cell.arms.back(),
                                  params, resume, reseeded);
            ctx_->armFaults(cell.faults);
            {
                obs::ProfileScope profile(&ctx_->obs(),
                                          "workload_run");
                w_.runSuffix(*ctx_, params, *resume);
            }
            out.result = collectCellResult(*ctx_, w_, params,
                                           group_.sys.cc, start,
                                           /*clone_stats=*/true,
                                           node.analyzer.get());
            out.ok = true;
        } catch (const FatalError &e) {
            out.error = e.what();
        }
        out.wall_us = elapsedUs(start);
        out.from_snapshot = true;
        ++out_.snapshot_hits;
    }

    /** Make sure @p node's snapshot is in memory, rebuilding it from
     *  the nearest resident ancestor after an eviction. */
    void
    ensureResident(TreeNode &node)
    {
        if (node.snap) {
            node.last_use = ++clock_;
            return;
        }
        materialize(node);
    }

    /** Restore the parent, apply this node's arm, run its segment
     *  and capture.  Deterministic: a rematerialization reproduces
     *  the original capture bit for bit. */
    void
    materialize(TreeNode &node)
    {
        TreeNode &parent = *node.parent;
        ensureResident(parent);
        ctx_->restoreSnapshot(*parent.snap);
        parent.last_use = ++clock_;
        node.params = parent.params;
        const workloads::Workload::Resume *resume =
            parent.resume.get();
        std::unique_ptr<workloads::Workload::Resume> reseeded;
        if (node.arm != nullptr)
            resume = applyArm(*ctx_, w_, *node.arm, node.params,
                              resume, reseeded);
        {
            obs::ProfileScope profile(&ctx_->obs(), "fork_prefix");
            node.resume = w_.runSegment(*ctx_, node.params, *resume,
                                        cuts_[node.depth]);
        }
        if (!node.analyzer) {
            node.analyzer = std::make_unique<trace::ForkAnalyzer>(
                parent.analyzer->clone());
            node.analyzer->extendCapture(ctx_->tracer());
        }
        captureNode(node);
    }

    void
    captureNode(TreeNode &node)
    {
        node.snap = std::make_unique<Snapshot>();
        ctx_->captureSnapshot(*node.snap);
        node.snap->meta.app = group_.app;
        node.snap->meta.uvm = node.params.uvm;
        node.snap->meta.fork_point = fork_point_str_;
        node.snap->meta.parent =
            node.parent != nullptr ? node.parent->label : "";
        resident_ += node.snap->totalBytes();
        peak_ = std::max(peak_, resident_);
        node.last_use = ++clock_;
        evict(&node);
    }

    void
    dropSnapshot(TreeNode &node)
    {
        if (!node.snap)
            return;
        resident_ -= node.snap->totalBytes();
        node.snap.reset();
    }

    /** LRU eviction down to the budget.  The root is pinned (every
     *  rematerialization path starts from it) and the node just
     *  captured is exempt — if nothing else is evictable the budget
     *  is simply exceeded and the peak gauge records it. */
    void
    evict(const TreeNode *keep)
    {
        while (resident_ > budget_) {
            TreeNode *victim = nullptr;
            for (TreeNode *node : nodes_) {
                if (node == root_.get() || node == keep
                    || !node->snap)
                    continue;
                if (victim == nullptr
                    || node->last_use < victim->last_use)
                    victim = node;
            }
            if (victim == nullptr)
                break;
            dropSnapshot(*victim);
        }
    }

    const ForkGroupSpec &group_;
    const workloads::Workload &w_;
    const std::vector<double> cuts_;
    const std::string fork_point_str_;
    ForkGroupOutcome &out_;
    const std::size_t budget_;
    std::unique_ptr<rt::Context> ctx_;
    std::unique_ptr<TreeNode> root_;
    std::vector<TreeNode *> nodes_;
    std::size_t resident_ = 0;
    std::size_t peak_ = 0;
    std::uint64_t clock_ = 0;
};

void
failAllCells(ForkGroupOutcome &out, const std::string &message)
{
    for (auto &cell : out.cells) {
        cell.ok = false;
        cell.error = message;
    }
}

} // namespace

double
ForkPoint::resolve(const workloads::Workload &workload) const
{
    if (mode == Mode::None || !workload.forkable())
        return -1.0;
    const double f = mode == Mode::Auto ? workload.defaultForkPoint()
                                        : fraction;
    return std::clamp(f, 0.0, 1.0);
}

std::vector<double>
ForkPoint::resolvePath(const workloads::Workload &workload) const
{
    std::vector<double> cuts;
    const double first = resolve(workload);
    if (first < 0.0)
        return cuts;
    cuts.push_back(first);
    for (const double c : chain) {
        if (c <= cuts.back()) {
            fatal("fork point path '%s' is not increasing for "
                  "workload '%s' (cut %g after %g)",
                  str().c_str(), workload.name().c_str(), c,
                  cuts.back());
        }
        cuts.push_back(c);
    }
    return cuts;
}

std::string
ForkPoint::str() const
{
    std::string out;
    switch (mode) {
      case Mode::None: out = "none"; break;
      case Mode::Auto: out = "auto"; break;
      case Mode::Fraction: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", fraction);
          out = buf;
          break;
      }
    }
    for (const double c : chain) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "/%g", c);
        out += buf;
    }
    return out;
}

Result<ForkPoint>
parseForkPoint(const std::string &text)
{
    // Split on '/': the head is the classic single cut, the tail the
    // chained deeper cuts.
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (true) {
        const std::size_t slash = text.find('/', begin);
        if (slash == std::string::npos) {
            parts.push_back(text.substr(begin));
            break;
        }
        parts.push_back(text.substr(begin, slash - begin));
        begin = slash + 1;
    }

    ForkPoint fp;
    const std::string &head = parts[0];
    if (head == "none") {
        fp.mode = ForkPoint::Mode::None;
    } else if (head == "auto") {
        fp.mode = ForkPoint::Mode::Auto;
    } else {
        double v = 0.0;
        try {
            std::size_t pos = 0;
            v = std::stod(head, &pos);
            if (pos != head.size())
                throw std::invalid_argument(head);
        } catch (...) {
            return errorf(ErrorCode::ParseError,
                          "bad fork point '%s' (none|auto|fraction)",
                          head.c_str());
        }
        if (v < 0.0 || v > 1.0)
            return errorf(ErrorCode::ParseError,
                          "fork point fraction %g out of [0, 1]", v);
        fp.mode = ForkPoint::Mode::Fraction;
        fp.fraction = v;
    }

    if (parts.size() == 1)
        return fp;
    if (fp.mode == ForkPoint::Mode::None)
        return errorf(ErrorCode::ParseError,
                      "fork point 'none' cannot chain further cuts "
                      "('%s')",
                      text.c_str());
    double prev = fp.fraction;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::string &comp = parts[i];
        double v = 0.0;
        try {
            if (comp.empty())
                throw std::invalid_argument(comp);
            std::size_t pos = 0;
            v = std::stod(comp, &pos);
            if (pos != comp.size())
                throw std::invalid_argument(comp);
        } catch (...) {
            return errorf(ErrorCode::ParseError,
                          "bad fork point path component '%s' in "
                          "'%s' (fraction)",
                          comp.c_str(), text.c_str());
        }
        if (v < 0.0 || v > 1.0)
            return errorf(ErrorCode::ParseError,
                          "fork point fraction %g out of [0, 1]", v);
        // The auto head's cut is only known per workload; its order
        // against chain[0] is checked at resolvePath() time.
        if ((fp.mode == ForkPoint::Mode::Fraction || i > 1)
            && v <= prev)
            return errorf(ErrorCode::ParseError,
                          "fork point path '%s' must be strictly "
                          "increasing (%g after %g)",
                          text.c_str(), v, prev);
        prev = v;
        fp.chain.push_back(v);
    }
    return fp;
}

std::uint64_t
identitySeed(const std::string &app, const rt::SystemConfig &sys,
             const workloads::WorkloadParams &params)
{
    // FNV-1a over the identity fields; the per-cell seed is
    // deliberately absent so every seed of a group hashes alike.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const std::uint8_t *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    };
    mix(app.data(), app.size());
    const std::uint8_t cc = sys.cc ? 1 : 0;
    mix(&cc, sizeof(cc));
    const std::uint8_t uvm = params.uvm ? 1 : 0;
    mix(&uvm, sizeof(uvm));
    mix(&params.scale, sizeof(params.scale));
    const std::int32_t overlap =
        static_cast<std::int32_t>(sys.channel.overlap);
    mix(&overlap, sizeof(overlap));
    const std::int32_t workers = sys.channel.crypto_workers;
    mix(&workers, sizeof(workers));
    const std::uint8_t tee_io = sys.channel.tee_io ? 1 : 0;
    mix(&tee_io, sizeof(tee_io));
    return h;
}

ForkGroupOutcome
runForkGroup(const ForkGroupSpec &group, const ForkPoint &fork_point,
             bool no_snapshot)
{
    ForkGroupOutcome out;
    out.cells.resize(group.cells.size());
    if (group.cells.empty())
        return out;

    const workloads::Workload *w =
        workloads::WorkloadRegistry::instance().find(group.app);

    // Unknown app / unsupported UVM fail every cell through the
    // legacy path's own error handling (one message per cell keeps
    // the per-cell reporting contract of the callers).
    const bool splittable =
        w != nullptr && !(group.params.uvm && !w->supportsUvm());
    std::vector<double> cuts;
    if (splittable) {
        try {
            cuts = fork_point.resolvePath(*w);
        } catch (const FatalError &e) {
            failAllCells(out, e.what());
            return out;
        }
    }
    if (cuts.empty()) {
        for (std::size_t i = 0; i < group.cells.size(); ++i)
            runLegacyCell(group, group.cells[i], out.cells[i]);
        return out;
    }

    const std::size_t arms = group.cells[0].arms.size();
    for (const ForkCell &cell : group.cells) {
        if (cell.arms.size() != arms) {
            failAllCells(out,
                         "fork group cells disagree on arm count");
            return out;
        }
    }
    if (arms > cuts.size()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "fork cells carry %zu arms but the fork point "
                      "has %zu cuts",
                      arms, cuts.size());
        failAllCells(out, buf);
        return out;
    }

    if (no_snapshot || group.cells.size() == 1) {
        // Cold-split: same arming point as fork mode, no shared
        // state.  Also the right call for singleton groups, where a
        // snapshot would only add capture/restore overhead.
        for (std::size_t i = 0; i < group.cells.size(); ++i)
            runColdSplitCell(*w, group, group.cells[i], cuts,
                             out.cells[i]);
        return out;
    }

    TreeRunner runner(group, *w, std::move(cuts), fork_point.str(),
                      out);
    runner.run();
    return out;
}

} // namespace hcc::snap
