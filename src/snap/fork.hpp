/**
 * @file
 * Fork/replay engine: run a group of campaign cells that share a
 * common warmup prefix by simulating the prefix once, capturing an
 * in-memory Snapshot, and replaying only the per-cell suffix.
 *
 * The engine understands three execution modes per group:
 *
 *  - *fork* (the fast path): one Context runs the prefix, the engine
 *    captures it, and every cell restores the snapshot, arms its
 *    fault config and runs the suffix.  With chained fork points and
 *    per-cell arms the prefix generalizes to a *snapshot tree*: cells
 *    sharing an arm path (e.g. the same reseed) share every interior
 *    node, so a nested 10k-cell grid re-simulates each tree edge once.
 *  - *cold-split* (`--no-snapshot`): every cell gets its own fresh
 *    Context, runs the full prefix (and arm/segment chain) itself,
 *    arms at the final cut and runs the suffix.  Semantically
 *    identical to fork mode — this pair is the byte-identity gate CI
 *    enforces with `cmp`.
 *  - *legacy* (`--fork-point none`, or a non-forkable workload): the
 *    pre-fork behaviour — faults are armed at Context construction
 *    and the workload runs start to finish via runWorkload().
 *
 * Mode note: fork and cold-split arm faults *at the fork point*, so
 * fault processes only act on the suffix; legacy arms at
 * construction, so warmup activity (including the SPDM handshake)
 * can fault too.  Fault campaigns therefore produce different —
 * equally valid — outputs under `none` vs the split modes; the
 * split modes always match each other exactly.
 *
 * Cross-seed prefix sharing: a group whose cells carry Reseed arms is
 * constructed from a seed-independent identity seed (identitySeed()),
 * runs one prefix for *all* seeds, and switches every seed-derived
 * stream to the cell seed at the fork point (Context::reseedAtFork +
 * Workload::reseedResume).  The cold-split control replays the exact
 * same derivation, so byte-identity is preserved by construction.
 */

#ifndef HCC_SNAP_FORK_HPP
#define HCC_SNAP_FORK_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/fault.hpp"
#include "runtime/context.hpp"
#include "workloads/workload.hpp"

namespace hcc::snap {

/**
 * Where a campaign places the prefix/suffix cut.  A fork point is a
 * *path*: the first component is the classic single cut, optional
 * '/'-chained components declare deeper cuts for snapshot trees
 * ("0.5/0.8" = share [0,0.5) across the whole group, [0.5,0.8)
 * across cells with the same first arm, replay [0.8,1] per cell).
 */
struct ForkPoint
{
    enum class Mode {
        /** No split: construction-time arming, full run(). */
        None,
        /** Use the workload's fork_after marker. */
        Auto,
        /** Explicit launch fraction in [0, 1]. */
        Fraction,
    };

    Mode mode = Mode::None;
    /** Launch fraction when mode == Fraction. */
    double fraction = 0.0;
    /** Chained cuts after the first, strictly increasing in (0, 1]. */
    std::vector<double> chain;

    /**
     * The effective first-cut fraction for @p workload: negative when
     * this fork point (or the workload) does not support splitting,
     * otherwise the fraction of launches the shared prefix covers.
     */
    double resolve(const workloads::Workload &workload) const;

    /**
     * All cuts of the path (first + chain) for @p workload; empty
     * when splitting does not apply.  Fatal when an `auto` first cut
     * resolves at or past the first chained cut — the path would not
     * be increasing, and silently reordering it would change what the
     * user asked for.
     */
    std::vector<double>
    resolvePath(const workloads::Workload &workload) const;

    /** Spec string ("none", "auto", "0.5/0.8") for logs/metadata. */
    std::string str() const;
};

/** Parse "none" | "auto" | fraction, optionally '/'-chained with
 *  strictly increasing fractions ("auto/0.95", "0.5/0.8/0.9"). */
Result<ForkPoint> parseForkPoint(const std::string &text);

/**
 * One interior branch of a snapshot tree: the state change a cell
 * applies at an intermediate cut.  Cells with equal arm prefixes
 * share the simulation up to the corresponding cut.
 */
struct ForkArm
{
    enum class Kind {
        /** Switch every seed-derived stream to `seed` exactly as a
         *  fresh Context constructed with it would derive them. */
        Reseed,
        /** Re-arm the injector with `faults` mid-run. */
        Faults,
    };

    Kind kind = Kind::Reseed;
    std::uint64_t seed = 0;
    fault::FaultConfig faults;
};

/**
 * One cell of a fork group: everything that may differ between cells
 * branched from the same prefix — the arm path taken through the
 * snapshot tree plus the fault config armed at the final cut
 * (rate-zero for baseline / sweep cells).
 *
 * `arms[k]` is applied at cut k+1's segment start; every cell of a
 * group must carry the same number of arms, and that number may
 * exceed the cut count by at most one (the last arm then applies at
 * the final cut, right before the per-cell fault arming).
 */
struct ForkCell
{
    fault::FaultConfig faults;
    std::vector<ForkArm> arms;
};

/** Default ceiling on resident in-memory snapshot bytes per group. */
inline constexpr std::size_t kDefaultSnapshotBudgetBytes =
    std::size_t{512} << 20;

/** A group of cells sharing one simulation prefix. */
struct ForkGroupSpec
{
    /** Workload to run (must be registered). */
    std::string app;
    /**
     * System config for every cell.  `sys.faults` is only honoured
     * in legacy mode; the split modes construct unfaulted and arm
     * each cell's ForkCell::faults at the fork point.  Groups with
     * Reseed arms should construct from identitySeed() so the shared
     * prefix is seed-independent.
     */
    rt::SystemConfig sys;
    workloads::WorkloadParams params;
    std::vector<ForkCell> cells;
    /**
     * Ceiling on simultaneously resident snapshot bytes (0 = no
     * limit).  Over budget the engine evicts the least-recently-used
     * interior snapshot (never the root) and deterministically
     * rematerializes it from its nearest resident ancestor when a
     * later cell needs it — outputs never change, only wall clock.
     */
    std::size_t snapshot_budget_bytes = kDefaultSnapshotBudgetBytes;
};

/** Outcome of one cell of a group. */
struct ForkCellOutcome
{
    bool ok = false;
    /** FatalError message when !ok. */
    std::string error;
    workloads::WorkloadResult result;
    /** Host wall-clock of this cell (suffix only in fork mode). */
    double wall_us = 0.0;
    /** True when the cell replayed from the in-memory snapshot. */
    bool from_snapshot = false;
};

/** Outcome of a whole group, cells in input order. */
struct ForkGroupOutcome
{
    std::vector<ForkCellOutcome> cells;
    /** Cells served by snapshot restore instead of a cold prefix. */
    std::size_t snapshot_hits = 0;
    /** High-water mark of resident snapshot bytes (fork mode). */
    std::size_t peak_resident_bytes = 0;
};

/**
 * Deterministic construction seed for a cross-seed fork group: a
 * pure function of the workload identity (app, cc/uvm mode, scale,
 * channel knobs) that deliberately ignores the per-cell seeds, so
 * one simulated prefix serves every seed in the group.  The cold
 * control must construct from the same value for byte-identity.
 */
std::uint64_t identitySeed(const std::string &app,
                           const rt::SystemConfig &sys,
                           const workloads::WorkloadParams &params);

/**
 * Run every cell of @p group.  A FatalError in the shared prefix
 * fails all cells; a FatalError in one cell's suffix (or in the
 * materialization of a tree node it needs) fails that cell alone
 * (the next cell re-restores a snapshot, which rewinds any partial
 * state).  Outputs are a pure function of the spec, fork point and
 * snapshot flag — never of wall-clock, the caller's threading or the
 * snapshot budget.
 *
 * @param no_snapshot  force cold-split mode even when a usable fork
 *                     point resolves (the CI identity gate).
 */
ForkGroupOutcome runForkGroup(const ForkGroupSpec &group,
                              const ForkPoint &fork_point,
                              bool no_snapshot);

} // namespace hcc::snap

#endif // HCC_SNAP_FORK_HPP
