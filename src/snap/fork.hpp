/**
 * @file
 * Fork/replay engine: run a group of campaign cells that share a
 * common warmup prefix by simulating the prefix once, capturing an
 * in-memory Snapshot, and replaying only the per-cell suffix.
 *
 * The engine understands three execution modes per group:
 *
 *  - *fork* (the fast path): one Context runs the prefix, the engine
 *    captures it, and every cell restores the snapshot, arms its
 *    fault config and runs the suffix.
 *  - *cold-split* (`--no-snapshot`): every cell gets its own fresh
 *    Context, runs the full prefix itself, arms at the fork point
 *    and runs the suffix.  Semantically identical to fork mode —
 *    this pair is the byte-identity gate CI enforces with `cmp`.
 *  - *legacy* (`--fork-point none`, or a non-forkable workload): the
 *    pre-fork behaviour — faults are armed at Context construction
 *    and the workload runs start to finish via runWorkload().
 *
 * Mode note: fork and cold-split arm faults *at the fork point*, so
 * fault processes only act on the suffix; legacy arms at
 * construction, so warmup activity (including the SPDM handshake)
 * can fault too.  Fault campaigns therefore produce different —
 * equally valid — outputs under `none` vs the split modes; the
 * split modes always match each other exactly.
 */

#ifndef HCC_SNAP_FORK_HPP
#define HCC_SNAP_FORK_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/fault.hpp"
#include "runtime/context.hpp"
#include "workloads/workload.hpp"

namespace hcc::snap {

/** Where a campaign places the prefix/suffix cut. */
struct ForkPoint
{
    enum class Mode {
        /** No split: construction-time arming, full run(). */
        None,
        /** Use the workload's fork_after marker. */
        Auto,
        /** Explicit launch fraction in [0, 1]. */
        Fraction,
    };

    Mode mode = Mode::None;
    /** Launch fraction when mode == Fraction. */
    double fraction = 0.0;

    /**
     * The effective prefix fraction for @p workload: negative when
     * this fork point (or the workload) does not support splitting,
     * otherwise the fraction of launches the shared prefix covers.
     */
    double resolve(const workloads::Workload &workload) const;

    /** Spec string ("none", "auto", "0.75") for logs and metadata. */
    std::string str() const;
};

/** Parse "none" | "auto" | a fraction in [0, 1]. */
Result<ForkPoint> parseForkPoint(const std::string &text);

/**
 * One cell of a fork group: everything that may differ between cells
 * branched from the same prefix.  Today that is exactly the fault
 * config armed at the fork point (rate-zero for baseline / sweep
 * cells).
 */
struct ForkCell
{
    fault::FaultConfig faults;
};

/** A group of cells sharing one simulation prefix. */
struct ForkGroupSpec
{
    /** Workload to run (must be registered). */
    std::string app;
    /**
     * System config for every cell.  `sys.faults` is only honoured
     * in legacy mode; the split modes construct unfaulted and arm
     * each cell's ForkCell::faults at the fork point.
     */
    rt::SystemConfig sys;
    workloads::WorkloadParams params;
    std::vector<ForkCell> cells;
};

/** Outcome of one cell of a group. */
struct ForkCellOutcome
{
    bool ok = false;
    /** FatalError message when !ok. */
    std::string error;
    workloads::WorkloadResult result;
    /** Host wall-clock of this cell (suffix only in fork mode). */
    double wall_us = 0.0;
    /** True when the cell replayed from the in-memory snapshot. */
    bool from_snapshot = false;
};

/** Outcome of a whole group, cells in input order. */
struct ForkGroupOutcome
{
    std::vector<ForkCellOutcome> cells;
    /** Cells served by snapshot restore instead of a cold prefix. */
    std::size_t snapshot_hits = 0;
};

/**
 * Run every cell of @p group.  A FatalError in the shared prefix
 * fails all cells; a FatalError in one cell's suffix fails that cell
 * alone (the next cell re-restores the snapshot, which rewinds any
 * partial suffix state).  Outputs are a pure function of the spec,
 * fork point and snapshot flag — never of wall-clock or the caller's
 * threading.
 *
 * @param no_snapshot  force cold-split mode even when a usable fork
 *                     point resolves (the CI identity gate).
 */
ForkGroupOutcome runForkGroup(const ForkGroupSpec &group,
                              const ForkPoint &fork_point,
                              bool no_snapshot);

} // namespace hcc::snap

#endif // HCC_SNAP_FORK_HPP
