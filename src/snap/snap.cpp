#include "snap/snap.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>

#include "snap/archive.hpp"

namespace hcc::snap {

namespace {

constexpr char kMagic[8] = {'H', 'C', 'C', 'S', 'N', 'A', 'P', '1'};
// v2: meta gained the parent link (chained-fork tree provenance).
constexpr std::uint32_t kVersion = 2;

void
saveMeta(Saver &ar, const SnapshotMeta &meta)
{
    ar.pod(meta.cc);
    ar.pod(meta.uvm);
    ar.pod(meta.seed);
    ar.pod(meta.sim_time);
    ar.str(meta.app);
    ar.str(meta.fork_point);
    ar.str(meta.parent);
}

void
loadMeta(Loader &ar, SnapshotMeta &meta)
{
    ar.pod(meta.cc);
    ar.pod(meta.uvm);
    ar.pod(meta.seed);
    ar.pod(meta.sim_time);
    ar.str(meta.app);
    ar.str(meta.fork_point);
    ar.str(meta.parent);
}

} // namespace

Status
writeSnapshotFile(const std::string &path, const Snapshot &snap)
{
    Saver ar;
    ar.raw(kMagic, sizeof(kMagic));
    ar.pod(kVersion);
    saveMeta(ar, snap.meta);
    ar.pod(static_cast<std::uint64_t>(snap.sections.size()));
    for (const auto &s : snap.sections) {
        ar.str(s.name);
        ar.pod(static_cast<std::uint64_t>(s.bytes.size()));
    }
    for (const auto &s : snap.sections)
        ar.raw(s.bytes.data(), s.bytes.size());

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return errorf(ErrorCode::IoError,
                      "cannot open '%s' for writing", path.c_str());
    const auto &bytes = ar.bytes();
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    const int rc = std::fclose(f);
    if (written != bytes.size() || rc != 0)
        return errorf(ErrorCode::IoError,
                      "short write to '%s'", path.c_str());
    return Status{};
}

Result<Snapshot>
readSnapshotFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return errorf(ErrorCode::IoError, "cannot open '%s'",
                      path.c_str());
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);

    if (bytes.size() < sizeof(kMagic) + sizeof(kVersion))
        return errorf(ErrorCode::ParseError,
                      "'%s' is too short to be a snapshot",
                      path.c_str());
    Loader ar(bytes);
    char magic[sizeof(kMagic)];
    ar.raw(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return errorf(ErrorCode::ParseError,
                      "'%s' has no HCCSNAP1 magic", path.c_str());
    std::uint32_t version = 0;
    ar.pod(version);
    if (version != kVersion)
        return errorf(ErrorCode::ParseError,
                      "'%s' is snapshot version %u, expected %u",
                      path.c_str(), version, kVersion);

    Snapshot snap;
    loadMeta(ar, snap.meta);
    std::uint64_t count = 0;
    ar.pod(count);
    // Sanity bound: each table entry needs at least its two length
    // words, so a corrupt count cannot drive a huge allocation.
    if (count > bytes.size())
        return errorf(ErrorCode::ParseError,
                      "'%s' section count %llu is implausible",
                      path.c_str(),
                      static_cast<unsigned long long>(count));
    std::vector<std::uint64_t> sizes;
    sizes.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        Section s;
        ar.str(s.name);
        std::uint64_t sz = 0;
        ar.pod(sz);
        if (sz > bytes.size())
            return errorf(ErrorCode::ParseError,
                          "'%s' section '%s' size %llu exceeds file",
                          path.c_str(), s.name.c_str(),
                          static_cast<unsigned long long>(sz));
        sizes.push_back(sz);
        snap.sections.push_back(std::move(s));
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        auto &s = snap.sections[static_cast<std::size_t>(i)];
        s.bytes.resize(static_cast<std::size_t>(
            sizes[static_cast<std::size_t>(i)]));
        ar.raw(s.bytes.data(), s.bytes.size());
    }
    if (!ar.exhausted())
        return errorf(ErrorCode::ParseError,
                      "'%s' has trailing bytes after the sections",
                      path.c_str());
    return snap;
}

void
printSnapshot(std::ostream &os, const Snapshot &snap)
{
    const auto &m = snap.meta;
    os << "snapshot v" << kVersion << "\n"
       << "  app:        " << (m.app.empty() ? "(library)" : m.app)
       << "\n"
       << "  mode:       " << (m.cc ? "cc" : "base")
       << (m.uvm ? "+uvm" : "") << "\n"
       << "  seed:       " << m.seed << "\n"
       << "  fork point: "
       << (m.fork_point.empty() ? "(none)" : m.fork_point) << "\n";
    if (!m.parent.empty())
        os << "  parent:     " << m.parent
           << " (chained tree node)\n";
    os << "  sim time:   " << formatTime(m.sim_time) << "\n"
       << "  sections:   " << snap.sections.size() << " ("
       << snap.totalBytes() << " bytes)\n";
    // Per-section size table with each section's share of the
    // archive payload — where tree-node memory goes at a glance.
    std::size_t name_w = 0;
    for (const auto &s : snap.sections)
        name_w = std::max(name_w, s.name.size());
    const double total =
        static_cast<double>(std::max<std::size_t>(
            snap.totalBytes(), 1));
    for (const auto &s : snap.sections) {
        char pct[16];
        std::snprintf(pct, sizeof(pct), "%5.1f%%",
                      100.0 * static_cast<double>(s.bytes.size())
                          / total);
        os << "    " << s.name << ": "
           << std::string(name_w - s.name.size(), ' ')
           << s.bytes.size() << " bytes " << pct << "\n";
    }
}

} // namespace hcc::snap
