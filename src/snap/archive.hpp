/**
 * @file
 * Byte-stream archives for simulator snapshots.
 *
 * A snapshot is an in-process, restore-in-place capture: state is
 * saved from and restored into the *same* objects, so pointers cached
 * elsewhere (obs::Counter handles, interned trace labels) stay valid
 * across a restore.  The archives therefore serialize only values —
 * never addresses — and every class that participates implements one
 * symmetric method:
 *
 * @code
 * template <class Ar> void snapState(Ar &ar)
 * {
 *     ar.pod(x_);
 *     ar.str(name_);
 *     ar.podVec(samples_);
 * }
 * @endcode
 *
 * called with a Saver (serializing into a byte vector) or a Loader
 * (restoring from one).  Method order must match exactly between the
 * two directions — the format is positional, with no field tags —
 * which the single-method idiom guarantees by construction.
 *
 * Kept dependency-light on purpose: this header is included from hot
 * simulator headers (timeline, rng, tracer) that must not grow heavy
 * transitive includes.
 */

#ifndef HCC_SNAP_ARCHIVE_HPP
#define HCC_SNAP_ARCHIVE_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/log.hpp"

namespace hcc::snap {

/**
 * Bit-copyable for snapshot purposes.  std::pair of pods is admitted
 * explicitly: its assignment operators are formally non-trivial, but
 * a pair of trivially copyable members has no invariants a byte copy
 * could break, and interval maps snapshot as (key, value) pairs.
 */
template <typename T>
struct IsSnapPod : std::is_trivially_copyable<T>
{
};

template <typename A, typename B>
struct IsSnapPod<std::pair<A, B>>
    : std::bool_constant<IsSnapPod<A>::value && IsSnapPod<B>::value>
{
};

template <typename T>
inline constexpr bool kIsSnapPod = IsSnapPod<T>::value;

/** Serializes snapState() fields into a growing byte vector. */
class Saver
{
  public:
    static constexpr bool kLoading = false;

    /** Fixed-width copy of a trivially copyable value. */
    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(kIsSnapPod<T>,
                      "snapshot pod() needs a bit-copyable type");
        const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
        bytes_.insert(bytes_.end(), p, p + sizeof(T));
    }

    void
    str(const std::string &s)
    {
        pod(static_cast<std::uint64_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    /** Length-prefixed vector of trivially copyable elements. */
    template <typename T>
    void
    podVec(const std::vector<T> &v)
    {
        static_assert(kIsSnapPod<T>);
        pod(static_cast<std::uint64_t>(v.size()));
        if (!v.empty()) {
            const auto *p =
                reinterpret_cast<const std::uint8_t *>(v.data());
            bytes_.insert(bytes_.end(), p, p + v.size() * sizeof(T));
        }
    }

    /** Raw bytes with no length prefix (caller knows the size). */
    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        bytes_.insert(bytes_.end(), b, b + n);
    }

    /** Element count of a container about to be written.
     *  @return the same count (symmetric with Loader::size()). */
    std::size_t
    size(std::size_t n)
    {
        pod(static_cast<std::uint64_t>(n));
        return n;
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Restores snapState() fields from a byte vector written by Saver. */
class Loader
{
  public:
    static constexpr bool kLoading = true;

    explicit Loader(const std::vector<std::uint8_t> &bytes)
        : bytes_(bytes.data()), len_(bytes.size())
    {
    }
    Loader(const std::uint8_t *bytes, std::size_t len)
        : bytes_(bytes), len_(len)
    {
    }

    template <typename T>
    void
    pod(T &v)
    {
        static_assert(kIsSnapPod<T>,
                      "snapshot pod() needs a bit-copyable type");
        HCC_ASSERT(pos_ + sizeof(T) <= len_,
                   "snapshot archive underrun");
        std::memcpy(&v, bytes_ + pos_, sizeof(T));
        pos_ += sizeof(T);
    }

    void
    str(std::string &s)
    {
        std::uint64_t n = 0;
        pod(n);
        HCC_ASSERT(pos_ + n <= len_, "snapshot archive underrun");
        s.assign(reinterpret_cast<const char *>(bytes_ + pos_),
                 static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
    }

    template <typename T>
    void
    podVec(std::vector<T> &v)
    {
        static_assert(kIsSnapPod<T>);
        std::uint64_t n = 0;
        pod(n);
        HCC_ASSERT(pos_ + n * sizeof(T) <= len_,
                   "snapshot archive underrun");
        v.resize(static_cast<std::size_t>(n));
        if (n)
            std::memcpy(v.data(), bytes_ + pos_,
                        static_cast<std::size_t>(n) * sizeof(T));
        pos_ += static_cast<std::size_t>(n) * sizeof(T);
    }

    void
    raw(void *p, std::size_t n)
    {
        HCC_ASSERT(pos_ + n <= len_, "snapshot archive underrun");
        std::memcpy(p, bytes_ + pos_, n);
        pos_ += n;
    }

    /** Element count of the container being restored; the @p n
     *  argument (the current live count) is ignored on load. */
    std::size_t
    size(std::size_t)
    {
        std::uint64_t n = 0;
        pod(n);
        return static_cast<std::size_t>(n);
    }

    std::size_t consumed() const { return pos_; }
    bool exhausted() const { return pos_ == len_; }

  private:
    const std::uint8_t *bytes_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

} // namespace hcc::snap

#endif // HCC_SNAP_ARCHIVE_HPP
