/**
 * @file
 * Simulator snapshots: named-section state captures of one Context.
 *
 * A Snapshot is the unit the campaign fork engine passes around: the
 * full deterministic state of one rt::Context at a declared fork
 * point, split into per-subsystem sections ("runtime", "obs",
 * "fault", "gpu", "trace", ...).  Capture and restore happen on the
 * *same* Context instance (restore-in-place, see snap/archive.hpp),
 * which is what lets N campaign cells branch from one warmed-up
 * prefix: run the prefix once, capture, then for each cell restore,
 * arm the cell's faults and replay only the suffix.
 *
 * Snapshots can also be written to disk for inspection
 * (`hccsim snapshot`).  The file format is versioned and
 * self-describing, but a file is *not* a portable resume point: the
 * archives serialize values positionally against the current build's
 * layout, so only the build that wrote a file can read it.  The
 * supported production path is in-memory fork/replay.
 */

#ifndef HCC_SNAP_SNAP_HPP
#define HCC_SNAP_SNAP_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/units.hpp"

namespace hcc::snap {

/** Provenance of a capture, carried in the file header. */
struct SnapshotMeta
{
    bool cc = false;            //!< captured Context ran in CC mode
    bool uvm = false;           //!< workload used managed memory
    std::uint64_t seed = 0;     //!< master seed of the captured run
    SimTime sim_time = 0;       //!< host clock at the fork point
    std::string app;            //!< workload name (empty: library use)
    std::string fork_point;     //!< fork-point spec that placed the cut
    /**
     * Parent link for snapshot-tree nodes: the fork-point path of
     * the capture this one chains from (the cut path minus its last
     * component), empty for a root capture.  Purely provenance — the
     * in-memory tree holds real pointers; this records the tree
     * shape for `hccsim snapshot` inspection.
     */
    std::string parent;
};

/** One named state blob (a subsystem's snapState output). */
struct Section
{
    std::string name;
    std::vector<std::uint8_t> bytes;
};

/** A full capture: meta plus ordered per-subsystem sections. */
struct Snapshot
{
    SnapshotMeta meta;
    std::vector<Section> sections;

    /**
     * Runtime-only provenance: the capturing Context and its capture
     * token, set by Context::captureSnapshot.  They let a restore on
     * the same Context rewind the append-only trace by truncation
     * instead of replaying the section bytes.  Never serialized — a
     * file round-trip clears them, and a restore on a different
     * Context (or after a newer capture on the same one) falls back
     * to the byte load, so the fast path can never change results.
     */
    const void *origin = nullptr;
    std::uint64_t origin_token = 0;

    /** Append an empty section and return its byte vector to fill. */
    std::vector<std::uint8_t> &
    add(std::string name)
    {
        sections.push_back({std::move(name), {}});
        return sections.back().bytes;
    }

    /** Find a section by name; nullptr when absent. */
    const Section *
    find(std::string_view name) const
    {
        for (const auto &s : sections)
            if (s.name == name)
                return &s;
        return nullptr;
    }

    /** Total payload bytes across all sections. */
    std::size_t
    totalBytes() const
    {
        std::size_t n = 0;
        for (const auto &s : sections)
            n += s.bytes.size();
        return n;
    }
};

/**
 * Write @p snap to @p path.  Format: magic "HCCSNAP1", a version
 * word, the meta block, then a section table of (name, size) followed
 * by the payloads.
 */
[[nodiscard]] Status writeSnapshotFile(const std::string &path,
                                       const Snapshot &snap);

/** Read a snapshot file written by writeSnapshotFile. */
Result<Snapshot> readSnapshotFile(const std::string &path);

/**
 * Human-readable dump of a snapshot's meta and section table (the
 * body of `hccsim snapshot --inspect`).
 */
void printSnapshot(std::ostream &os, const Snapshot &snap);

} // namespace hcc::snap

#endif // HCC_SNAP_SNAP_HPP
