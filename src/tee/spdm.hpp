/**
 * @file
 * SPDM session model.
 *
 * PCIe 5.0 has no native link encryption (IDE arrived later), so
 * NVIDIA CC attests the GPU and derives the AES-GCM transfer keys
 * over SPDM (Sec. III).  We model the handshake as a one-time cost
 * at CC-mode device initialization and functionally derive a shared
 * session key both ends use for the SecureChannel.
 */

#ifndef HCC_TEE_SPDM_HPP
#define HCC_TEE_SPDM_HPP

#include <array>
#include <cstdint>

#include "common/status.hpp"
#include "common/units.hpp"

namespace hcc::fault { class Injector; }

namespace hcc::tee {

/** Established SPDM session state. */
class SpdmSession
{
  public:
    /** Session key length (AES-256-GCM per the H100 CC design). */
    static constexpr std::size_t kKeyLen = 32;

    /**
     * Run the attestation + key-exchange handshake.
     * @param seed deterministic seed standing in for the DH exchange.
     */
    static SpdmSession establish(std::uint64_t seed);

    /**
     * Fallible handshake: the "spdm.handshake" fault site can fail
     * one attempt, returning a HandshakeError Status the caller
     * recovers from by re-attesting (Context retries up to
     * fault::kMaxHandshakeAttempts, charging kHandshakeCost per
     * attempt).  With @p fault null or the site unarmed this is
     * exactly establish(seed).
     */
    static Result<SpdmSession> establish(std::uint64_t seed,
                                         fault::Injector *fault);

    /** One-time wall-clock cost of the handshake (measurement, cert
     *  chain verification, key schedule). */
    static constexpr SimTime kHandshakeCost = time::ms(180.0);

    const std::array<std::uint8_t, kKeyLen> &key() const { return key_; }

    std::uint64_t sessionId() const { return session_id_; }

  private:
    SpdmSession() = default;

    std::array<std::uint8_t, kKeyLen> key_{};
    std::uint64_t session_id_ = 0;
};

} // namespace hcc::tee

#endif // HCC_TEE_SPDM_HPP
