#include "tee/attestation.hpp"

#include <cstring>

namespace hcc::tee {

MeasurementRegister::MeasurementRegister() = default;

void
MeasurementRegister::extend(std::span<const std::uint8_t> data)
{
    const auto event = crypto::Sha256::digest(data);
    crypto::Sha256 h;
    h.update(value_);
    h.update(event);
    value_ = h.finalize();
    ++extensions_;
}

void
MeasurementRegister::extendComponent(const std::string &name,
                                     std::span<const std::uint8_t>
                                         data)
{
    std::vector<std::uint8_t> measured(name.begin(), name.end());
    measured.push_back(0);
    measured.insert(measured.end(), data.begin(), data.end());
    extend(measured);
}

AttestationService::AttestationService(
    std::span<const std::uint8_t> platform_key)
    : key_(platform_key.begin(), platform_key.end())
{}

std::vector<std::uint8_t>
AttestationService::serialize(const Quote &quote) const
{
    std::vector<std::uint8_t> out;
    out.reserve(3 * crypto::kSha256DigestLen + 8);
    out.insert(out.end(), quote.mrtd.begin(), quote.mrtd.end());
    out.insert(out.end(), quote.rtmr.begin(), quote.rtmr.end());
    out.insert(out.end(), quote.gpu_fw.begin(), quote.gpu_fw.end());
    std::uint64_t n = quote.nonce;
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(n & 0xff));
        n >>= 8;
    }
    return out;
}

Quote
AttestationService::generateQuote(const MeasurementRegister &mrtd,
                                  const MeasurementRegister &rtmr,
                                  const MeasurementRegister &gpu_fw,
                                  std::uint64_t nonce) const
{
    Quote q;
    q.mrtd = mrtd.value();
    q.rtmr = rtmr.value();
    q.gpu_fw = gpu_fw.value();
    q.nonce = nonce;
    q.signature = crypto::hmacSha256(key_, serialize(q));
    return q;
}

bool
AttestationService::verifyQuote(
    const Quote &quote, std::uint64_t expected_nonce,
    const crypto::Sha256Digest &golden_mrtd,
    const crypto::Sha256Digest &golden_rtmr,
    const crypto::Sha256Digest &golden_gpu_fw) const
{
    const auto expect = crypto::hmacSha256(key_, serialize(quote));
    // Single-pass comparison (no early exit on the signature).
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < expect.size(); ++i)
        acc |= static_cast<std::uint8_t>(expect[i]
                                         ^ quote.signature[i]);
    if (acc != 0)
        return false;
    if (quote.nonce != expected_nonce)
        return false;
    return quote.mrtd == golden_mrtd && quote.rtmr == golden_rtmr
        && quote.gpu_fw == golden_gpu_fw;
}

} // namespace hcc::tee
