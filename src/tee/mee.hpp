/**
 * @file
 * Memory encryption engine model (Intel TME-MK).
 *
 * TME-MK sits in the memory controller and transparently encrypts TD
 * private memory with AES-XTS keyed per key-ID.  Because AES-XTS is
 * counter-less there is no metadata to fetch, so the latency impact
 * is a small fixed pipeline delay per cache-line — which is why the
 * paper treats CPU-side memory encryption as effectively free and
 * why GPU HBM can skip encryption entirely (Sec. III).
 *
 * The functional API encrypts/decrypts real cache lines so tests can
 * demonstrate that private memory is unintelligible without the
 * key-ID's key, and that "auto bypass" (Table I) leaves non-TD pages
 * in the clear.
 */

#ifndef HCC_TEE_MEE_HPP
#define HCC_TEE_MEE_HPP

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "crypto/xts.hpp"
#include "obs/registry.hpp"

namespace hcc::tee {

/** Cache-line granularity of the memory encryption engine. */
constexpr Bytes kMeeLineBytes = 64;

/**
 * Multi-key memory encryption engine.
 */
class MemoryEncryptionEngine
{
  public:
    /**
     * @param obs optional stats sink; publishes
     *        "tee.mee.{lines,lines_bypassed}".
     */
    explicit MemoryEncryptionEngine(obs::Registry *obs = nullptr);

    /**
     * Provision a key for @p key_id (one per TD).
     * @param key 32 or 64 bytes of XTS key material.
     */
    void provisionKey(std::uint16_t key_id,
                      std::span<const std::uint8_t> key);

    /** Whether a key is provisioned for @p key_id. */
    bool hasKey(std::uint16_t key_id) const;

    /**
     * Encrypt @p data as it would appear on the DRAM bus.  @p line_addr
     * is the physical line index used as the XTS tweak; data must be a
     * multiple of the line size.  key_id 0 means bypass (shared page):
     * data is returned as-is.
     */
    std::vector<std::uint8_t> writeLine(std::uint16_t key_id,
                                        std::uint64_t line_addr,
                                        std::span<const std::uint8_t>
                                            data);

    /** Inverse of writeLine. */
    std::vector<std::uint8_t> readLine(std::uint16_t key_id,
                                       std::uint64_t line_addr,
                                       std::span<const std::uint8_t>
                                           data);

    /** Fixed added latency per memory access through the engine. */
    static constexpr SimTime kPipelineDelay = time::ns(2.4);

    /** Lines processed (excluding bypass). */
    std::uint64_t linesProcessed() const { return lines_; }
    /** Bypass (shared/non-TD) lines passed through. */
    std::uint64_t linesBypassed() const { return bypassed_; }

  private:
    const crypto::AesXts &cipherFor(std::uint16_t key_id) const;

    std::map<std::uint16_t, crypto::AesXts> keys_;
    std::uint64_t lines_ = 0;
    std::uint64_t bypassed_ = 0;
    obs::Counter *obs_lines_ = nullptr;
    obs::Counter *obs_bypassed_ = nullptr;
};

} // namespace hcc::tee

#endif // HCC_TEE_MEE_HPP
