/**
 * @file
 * Attestation model: measurement registers and signed quotes.
 *
 * Before a tenant trusts a TD + CC-GPU pair, it verifies evidence:
 * the TDX module measures the TD (MRTD/RTMRs) and the GPU attests its
 * firmware over SPDM (Sec. III).  This model implements the evidence
 * chain functionally — real SHA-256 measurement extension and an
 * HMAC-SHA-256 "signature" standing in for the ECDSA quote — so tests
 * can demonstrate that tampered software stacks are rejected, plus a
 * verification-latency cost for end-to-end accounting.
 */

#ifndef HCC_TEE_ATTESTATION_HPP
#define HCC_TEE_ATTESTATION_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "crypto/sha256.hpp"

namespace hcc::tee {

/**
 * A measurement register: extend-only SHA-256 chain, like a TPM PCR
 * or TDX RTMR.
 */
class MeasurementRegister
{
  public:
    MeasurementRegister();

    /** Extend with a measured component: r = H(r || H(data)). */
    void extend(std::span<const std::uint8_t> data);

    /** Extend with a named component (name bytes are measured). */
    void extendComponent(const std::string &name,
                         std::span<const std::uint8_t> data);

    const crypto::Sha256Digest &value() const { return value_; }
    std::size_t extensions() const { return extensions_; }

  private:
    crypto::Sha256Digest value_{};
    std::size_t extensions_ = 0;
};

/** Evidence produced by the platform for one TD + GPU binding. */
struct Quote
{
    /** TD measurement (MRTD analog). */
    crypto::Sha256Digest mrtd{};
    /** Runtime measurement (RTMR analog: driver, CUDA stack). */
    crypto::Sha256Digest rtmr{};
    /** GPU firmware measurement (SPDM evidence). */
    crypto::Sha256Digest gpu_fw{};
    /** Freshness nonce supplied by the verifier. */
    std::uint64_t nonce = 0;
    /** HMAC-SHA-256 over the above under the platform key. */
    crypto::Sha256Digest signature{};
};

/**
 * Quote generation/verification with a shared platform key (the
 * functional stand-in for the PKI chain).
 */
class AttestationService
{
  public:
    /** @param platform_key provisioning secret (e.g. from SPDM). */
    explicit AttestationService(
        std::span<const std::uint8_t> platform_key);

    /** Produce a quote over the current measurements. */
    Quote generateQuote(const MeasurementRegister &mrtd,
                        const MeasurementRegister &rtmr,
                        const MeasurementRegister &gpu_fw,
                        std::uint64_t nonce) const;

    /**
     * Verify a quote: signature valid, nonce matches, measurements
     * equal the verifier's golden values.
     */
    [[nodiscard]] bool verifyQuote(
        const Quote &quote, std::uint64_t expected_nonce,
        const crypto::Sha256Digest &golden_mrtd,
        const crypto::Sha256Digest &golden_rtmr,
        const crypto::Sha256Digest &golden_gpu_fw) const;

    /** Modeled wall-clock cost of generating a quote. */
    static constexpr SimTime kQuoteGenCost = time::ms(12.0);
    /** Modeled wall-clock cost of verifying a quote. */
    static constexpr SimTime kQuoteVerifyCost = time::ms(3.5);

  private:
    std::vector<std::uint8_t> serialize(const Quote &quote) const;

    std::vector<std::uint8_t> key_;
};

} // namespace hcc::tee

#endif // HCC_TEE_ATTESTATION_HPP
