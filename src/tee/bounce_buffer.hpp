/**
 * @file
 * Bounce-buffer (swiotlb-style) pool model.
 *
 * Under TDX the GPU's DMA engines cannot reach the TD's private
 * memory, so every transfer stages through hypervisor-managed shared
 * memory — the bounce buffer (Sec. II-A).  This pool models a fixed
 * carve-out of shared slots: acquisition is cheap while slots are
 * free, and when the pool is exhausted callers must wait for the
 * earliest release (back-pressure that throttles deep async
 * pipelines).  The pool also carries real byte storage so the
 * functional SecureChannel path can stage actual ciphertext.
 */

#ifndef HCC_TEE_BOUNCE_BUFFER_HPP
#define HCC_TEE_BOUNCE_BUFFER_HPP

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::tee {

/** Handle to an acquired bounce slot. */
struct BounceSlot
{
    int index = -1;
    /** Time at which the slot became usable by the caller. */
    SimTime acquired_at = 0;
};

/**
 * Fixed pool of equally-sized shared-memory slots.
 */
class BounceBufferPool
{
  public:
    /**
     * @param slot_bytes size of each slot (the staging chunk size).
     * @param slots number of slots (pool capacity / slot size).
     * @param obs optional stats sink; publishes
     *        "tee.bounce.{acquires,contention_events,
     *        contention_wait_ps}" counters and the
     *        "tee.bounce.occupancy" gauge.
     */
    BounceBufferPool(Bytes slot_bytes, int slots,
                     obs::Registry *obs = nullptr);

    /**
     * Acquire a slot at time @p ready; if all slots are busy, the
     * acquisition time is pushed to the earliest outstanding release.
     * When every slot is *held* (acquired, release not yet recorded —
     * a deep pipeline with bounce_slots transfers genuinely in
     * flight), the acquisition queues behind the oldest hold and is
     * pushed to the latest release recorded so far (the earliest
     * deterministic bound for a future release).
     */
    BounceSlot acquire(SimTime ready);

    /** Release a slot at time @p when. */
    void release(const BounceSlot &slot, SimTime when);

    /** Mutable access to a slot's backing storage (functional path). */
    std::vector<std::uint8_t> &storage(const BounceSlot &slot);

    Bytes slotBytes() const { return slot_bytes_; }
    int slotCount() const { return static_cast<int>(buffers_.size()); }
    int freeSlots() const { return static_cast<int>(free_.size()); }

    /** Holds outstanding right now (acquired, not yet released). */
    int heldSlots() const { return static_cast<int>(held_.size()); }

    /** Total times a caller had to wait for a slot. */
    std::uint64_t contentionEvents() const { return contention_; }
    /** Total time callers spent waiting for slots. */
    SimTime contentionTime() const { return contention_time_; }

    /**
     * Latest release time seen so far (0 before any release) — the
     * point at which the whole pool has drained.  The fault layer's
     * bounce.exhausted recovery stalls an acquisition to here.
     */
    SimTime latestRelease() const { return latest_release_; }

    /**
     * Snapshot support: free list, busy heap (re-pushed in sorted
     * order on restore — heap layout is not observable, only pop
     * order is), the outstanding-hold FIFO and the contention
     * totals.  Slot byte storage is per-transfer scratch, fully
     * rewritten before each use, so its content is not captured.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.podVec(free_);
        std::vector<int> held(held_.begin(), held_.end());
        ar.podVec(held);
        if constexpr (Ar::kLoading)
            held_.assign(held.begin(), held.end());
        std::vector<std::pair<SimTime, int>> busy;
        if constexpr (Ar::kLoading) {
            ar.podVec(busy);
            busy_until_heap_ = {};
            for (const auto &b : busy)
                busy_until_heap_.push(b);
        } else {
            auto copy = busy_until_heap_;
            while (!copy.empty()) {
                busy.push_back(copy.top());
                copy.pop();
            }
            ar.podVec(busy);
        }
        ar.pod(contention_);
        ar.pod(contention_time_);
        ar.pod(latest_release_);
        ar.pod(in_use_);
    }

  private:
    Bytes slot_bytes_;
    std::vector<std::vector<std::uint8_t>> buffers_;
    std::vector<int> free_;
    // Outstanding holds in acquisition order (may repeat an index
    // when acquisitions queue behind a held slot).  A slot is in
    // exactly one place: free list, busy heap, or here.
    std::deque<int> held_;
    // Min-heap of (release_time, slot) for busy slots.
    std::priority_queue<std::pair<SimTime, int>,
                        std::vector<std::pair<SimTime, int>>,
                        std::greater<>> busy_until_heap_;
    std::uint64_t contention_ = 0;
    SimTime contention_time_ = 0;
    SimTime latest_release_ = 0;
    int in_use_ = 0;
    obs::Counter *obs_acquires_ = nullptr;
    obs::Counter *obs_contention_events_ = nullptr;
    obs::Counter *obs_contention_wait_ps_ = nullptr;
    obs::Gauge *obs_occupancy_ = nullptr;
};

} // namespace hcc::tee

#endif // HCC_TEE_BOUNCE_BUFFER_HPP
