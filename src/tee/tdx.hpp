/**
 * @file
 * Intel TDX cost and accounting model.
 *
 * A TD cannot touch the outside world directly: every interaction
 * with the hypervisor or a device MMIO region traps through the TDX
 * module (#VE -> tdx_hypercall -> SEAM root -> host and back).  The
 * paper attributes the bulk of the CC kernel-launch and allocation
 * overheads to these transitions ([16]: a tdx_hypercall costs >470%
 * of a plain vmcall).  This class converts "number of guest<->host
 * round trips" into simulated time and keeps auditable counters, and
 * also prices page-attribute conversion (set_memory_decrypted) and
 * bounce-buffer carve-outs (dma_direct_alloc) — the two dominant
 * callees in the paper's Fig. 8 launch flame graph.
 */

#ifndef HCC_TEE_TDX_HPP
#define HCC_TEE_TDX_HPP

#include <cstdint>

#include "common/calibration.hpp"
#include "common/units.hpp"
#include "obs/registry.hpp"

namespace hcc::fault { class Injector; }

namespace hcc::tee {

/** Counters of TDX-related transitions, for Fig. 8-style breakdowns. */
struct TdxStats
{
    std::uint64_t hypercalls = 0;
    std::uint64_t seamcalls = 0;
    std::uint64_t vmexits = 0;           //!< non-TD guest exits
    std::uint64_t pages_converted = 0;
    std::uint64_t dma_allocs = 0;
    SimTime hypercall_time = 0;
    SimTime seamcall_time = 0;
    SimTime vmexit_time = 0;
    SimTime page_convert_time = 0;
    SimTime dma_alloc_time = 0;

    SimTime
    totalTime() const
    {
        return hypercall_time + seamcall_time + vmexit_time
            + page_convert_time + dma_alloc_time;
    }
};

/**
 * The TDX module boundary for one TD (or, with cc disabled, the plain
 * VMX boundary for a regular VM).  All cost methods return the time
 * charged and update counters.
 */
class TdxModule
{
  public:
    /**
     * @param cc_enabled true for a TD, false for a regular VM.
     * @param obs optional stats sink; mirrors TdxStats as
     *        "tee.tdx.*" counters (transition counts and *_time_ps).
     * @param fault optional injector arming the "tdx.ept_storm"
     *        site: a storm charges fault::kEptStormExits extra
     *        guest<->host round trips on top of the requested count.
     */
    explicit TdxModule(bool cc_enabled, obs::Registry *obs = nullptr,
                       fault::Injector *fault = nullptr);

    bool ccEnabled() const { return cc_; }

    /**
     * Charge @p count guest->host round trips.  Under CC these are
     * tdx_hypercalls; in a regular VM they are plain vmexits.
     */
    SimTime guestHostRoundTrips(int count);

    /** Charge @p count TD<->TDX-module transitions (seamcalls). */
    SimTime seamcalls(int count);

    /**
     * Charge conversion of @p bytes of private memory to shared (or
     * back): set_memory_decrypted page-attribute walks.  No-op (zero
     * cost) when CC is off.
     */
    SimTime convertPages(Bytes bytes);

    /**
     * Charge a dma_direct_alloc bounce-buffer carve-out of @p bytes,
     * including the page conversion of the carved region.  No-op when
     * CC is off.
     */
    SimTime dmaAlloc(Bytes bytes);

    /** Cost of one MMIO doorbell write from the guest. */
    SimTime mmioDoorbell();

    const TdxStats &stats() const { return stats_; }
    void resetStats() { stats_ = TdxStats{}; }

    /** Snapshot support: the accumulated transition stats. */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        ar.pod(stats_);
    }

  private:
    /** Count + accumulated-time counter pair for one transition kind. */
    struct ObsPair
    {
        obs::Counter *count = nullptr;
        obs::Counter *time_ps = nullptr;

        void
        add(std::uint64_t n, SimTime t)
        {
            if (count) {
                count->bump(n);
                time_ps->bump(static_cast<std::uint64_t>(t));
            }
        }
    };

    bool cc_;
    TdxStats stats_;
    fault::Injector *fault_ = nullptr;
    ObsPair obs_hypercalls_;
    ObsPair obs_seamcalls_;
    ObsPair obs_vmexits_;
    ObsPair obs_pages_converted_;
    ObsPair obs_dma_allocs_;
};

} // namespace hcc::tee

#endif // HCC_TEE_TDX_HPP
