#include "tee/mee.hpp"

#include "common/log.hpp"

namespace hcc::tee {

MemoryEncryptionEngine::MemoryEncryptionEngine(obs::Registry *obs)
{
    if (obs) {
        obs_lines_ = &obs->counter("tee.mee.lines");
        obs_bypassed_ = &obs->counter("tee.mee.lines_bypassed");
    }
}

void
MemoryEncryptionEngine::provisionKey(std::uint16_t key_id,
                                     std::span<const std::uint8_t> key)
{
    if (key_id == 0)
        fatal("key id 0 is reserved for bypass (shared pages)");
    keys_.emplace(key_id, crypto::AesXts(key));
}

bool
MemoryEncryptionEngine::hasKey(std::uint16_t key_id) const
{
    return keys_.find(key_id) != keys_.end();
}

const crypto::AesXts &
MemoryEncryptionEngine::cipherFor(std::uint16_t key_id) const
{
    const auto it = keys_.find(key_id);
    if (it == keys_.end())
        fatal("no key provisioned for key id %u", key_id);
    return it->second;
}

std::vector<std::uint8_t>
MemoryEncryptionEngine::writeLine(std::uint16_t key_id,
                                  std::uint64_t line_addr,
                                  std::span<const std::uint8_t> data)
{
    std::vector<std::uint8_t> out(data.begin(), data.end());
    if (key_id == 0) {
        ++bypassed_;
        if (obs_bypassed_)
            obs_bypassed_->add(1);
        return out;
    }
    if (data.size() % kMeeLineBytes != 0) {
        fatal("MEE write of %zu bytes is not line aligned",
              data.size());
    }
    const auto &xts = cipherFor(key_id);
    for (Bytes off = 0; off < data.size(); off += kMeeLineBytes) {
        std::span<std::uint8_t> line(out.data() + off, kMeeLineBytes);
        xts.encrypt(line_addr + off / kMeeLineBytes, line, line);
        ++lines_;
        if (obs_lines_)
            obs_lines_->add(1);
    }
    return out;
}

std::vector<std::uint8_t>
MemoryEncryptionEngine::readLine(std::uint16_t key_id,
                                 std::uint64_t line_addr,
                                 std::span<const std::uint8_t> data)
{
    std::vector<std::uint8_t> out(data.begin(), data.end());
    if (key_id == 0) {
        ++bypassed_;
        if (obs_bypassed_)
            obs_bypassed_->add(1);
        return out;
    }
    if (data.size() % kMeeLineBytes != 0)
        fatal("MEE read of %zu bytes is not line aligned", data.size());
    const auto &xts = cipherFor(key_id);
    for (Bytes off = 0; off < data.size(); off += kMeeLineBytes) {
        std::span<std::uint8_t> line(out.data() + off, kMeeLineBytes);
        xts.decrypt(line_addr + off / kMeeLineBytes, line, line);
        ++lines_;
        if (obs_lines_)
            obs_lines_->add(1);
    }
    return out;
}

} // namespace hcc::tee
