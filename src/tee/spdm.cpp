#include "tee/spdm.hpp"

#include "common/rng.hpp"
#include "fault/fault.hpp"

namespace hcc::tee {

SpdmSession
SpdmSession::establish(std::uint64_t seed)
{
    SpdmSession s;
    Rng rng(seed, 0x5d4a);
    s.session_id_ = rng.next64();
    for (auto &b : s.key_)
        b = static_cast<std::uint8_t>(rng.next32());
    return s;
}

Result<SpdmSession>
SpdmSession::establish(std::uint64_t seed, fault::Injector *fault)
{
    if (fault && fault->shouldInject(fault::Site::SpdmHandshake))
        return errorf(ErrorCode::HandshakeError,
                      "SPDM measurement verification failed "
                      "(injected handshake fault)");
    return establish(seed);
}

} // namespace hcc::tee
