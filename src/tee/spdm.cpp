#include "tee/spdm.hpp"

#include "common/rng.hpp"

namespace hcc::tee {

SpdmSession
SpdmSession::establish(std::uint64_t seed)
{
    SpdmSession s;
    Rng rng(seed, 0x5d4a);
    s.session_id_ = rng.next64();
    for (auto &b : s.key_)
        b = static_cast<std::uint8_t>(rng.next32());
    return s;
}

} // namespace hcc::tee
