#include "tee/bounce_buffer.hpp"

#include "common/log.hpp"

namespace hcc::tee {

BounceBufferPool::BounceBufferPool(Bytes slot_bytes, int slots)
    : slot_bytes_(slot_bytes)
{
    if (slot_bytes == 0 || slots <= 0)
        fatal("bounce pool requires positive slot size and count");
    buffers_.resize(static_cast<std::size_t>(slots));
    free_.reserve(static_cast<std::size_t>(slots));
    for (int i = slots - 1; i >= 0; --i)
        free_.push_back(i);
}

BounceSlot
BounceBufferPool::acquire(SimTime ready)
{
    BounceSlot slot;
    if (!free_.empty()) {
        slot.index = free_.back();
        free_.pop_back();
        slot.acquired_at = ready;
        return slot;
    }
    // Wait for the earliest release.
    HCC_ASSERT(!busy_until_heap_.empty(), "pool has no slots at all");
    const auto [release_time, index] = busy_until_heap_.top();
    busy_until_heap_.pop();
    slot.index = index;
    slot.acquired_at = std::max(ready, release_time);
    if (slot.acquired_at > ready) {
        ++contention_;
        contention_time_ += slot.acquired_at - ready;
    }
    return slot;
}

void
BounceBufferPool::release(const BounceSlot &slot, SimTime when)
{
    HCC_ASSERT(slot.index >= 0
               && slot.index < static_cast<int>(buffers_.size()),
               "invalid bounce slot");
    // Released slots park on the min-heap keyed by release time and
    // are recycled by acquire(): the heap pop hands back the slot
    // with the earliest release, waiting for it if necessary.  The
    // free list only holds never-used slots, so the two sets stay
    // disjoint by construction.
    busy_until_heap_.emplace(when, slot.index);
}

std::vector<std::uint8_t> &
BounceBufferPool::storage(const BounceSlot &slot)
{
    HCC_ASSERT(slot.index >= 0
               && slot.index < static_cast<int>(buffers_.size()),
               "invalid bounce slot");
    auto &buf = buffers_[static_cast<std::size_t>(slot.index)];
    if (buf.size() != slot_bytes_)
        buf.resize(slot_bytes_);
    return buf;
}

} // namespace hcc::tee
