#include "tee/bounce_buffer.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hcc::tee {

BounceBufferPool::BounceBufferPool(Bytes slot_bytes, int slots,
                                   obs::Registry *obs)
    : slot_bytes_(slot_bytes)
{
    if (slot_bytes == 0 || slots <= 0)
        fatal("bounce pool requires positive slot size and count");
    buffers_.resize(static_cast<std::size_t>(slots));
    free_.reserve(static_cast<std::size_t>(slots));
    for (int i = slots - 1; i >= 0; --i)
        free_.push_back(i);
    if (obs) {
        obs_acquires_ = &obs->counter("tee.bounce.acquires");
        obs_contention_events_ =
            &obs->counter("tee.bounce.contention_events");
        obs_contention_wait_ps_ =
            &obs->counter("tee.bounce.contention_wait_ps");
        obs_occupancy_ = &obs->gauge("tee.bounce.occupancy");
    }
}

BounceSlot
BounceBufferPool::acquire(SimTime ready)
{
    BounceSlot slot;
    if (!free_.empty()) {
        slot.index = free_.back();
        free_.pop_back();
        slot.acquired_at = ready;
    } else if (!busy_until_heap_.empty()) {
        // Wait for the earliest release.
        const auto [release_time, index] = busy_until_heap_.top();
        busy_until_heap_.pop();
        slot.index = index;
        slot.acquired_at = std::max(ready, release_time);
    } else {
        // Every slot is currently *held* — acquired, release not yet
        // recorded.  That is a legitimate state once bounce_slots
        // transfers are genuinely in flight; queue behind the oldest
        // hold.  Its release time is unknown in program order, so the
        // best deterministic bound is the latest release recorded so
        // far (the pool cannot fully recycle before it has drained).
        HCC_ASSERT(!held_.empty(), "pool has no slots at all");
        slot.index = held_.front();
        slot.acquired_at = std::max(ready, latest_release_);
    }
    if (slot.acquired_at > ready) {
        ++contention_;
        contention_time_ += slot.acquired_at - ready;
        if (obs_contention_events_) {
            obs_contention_events_->add(1);
            obs_contention_wait_ps_->add(
                static_cast<std::uint64_t>(slot.acquired_at - ready));
        }
    }
    held_.push_back(slot.index);
    ++in_use_;
    if (obs_acquires_) {
        obs_acquires_->add(1);
        obs_occupancy_->set(in_use_, slot.acquired_at);
    }
    return slot;
}

void
BounceBufferPool::release(const BounceSlot &slot, SimTime when)
{
    HCC_ASSERT(slot.index >= 0
               && slot.index < static_cast<int>(buffers_.size()),
               "invalid bounce slot");
    const auto it = std::find(held_.begin(), held_.end(), slot.index);
    HCC_ASSERT(it != held_.end(), "release of a slot never acquired");
    held_.erase(it);
    // Released slots park on the min-heap keyed by release time and
    // are recycled by acquire(): the heap pop hands back the slot
    // with the earliest release, waiting for it if necessary.  The
    // free list only holds never-used slots, so the two sets stay
    // disjoint by construction.  When the same index is still held by
    // a queued acquisition (oversubscribed pool), the slot is not yet
    // recyclable — only the final release parks it.
    if (std::find(held_.begin(), held_.end(), slot.index)
        == held_.end())
        busy_until_heap_.emplace(when, slot.index);
    latest_release_ = std::max(latest_release_, when);
    --in_use_;
    if (obs_occupancy_)
        obs_occupancy_->set(in_use_, when);
}

std::vector<std::uint8_t> &
BounceBufferPool::storage(const BounceSlot &slot)
{
    HCC_ASSERT(slot.index >= 0
               && slot.index < static_cast<int>(buffers_.size()),
               "invalid bounce slot");
    auto &buf = buffers_[static_cast<std::size_t>(slot.index)];
    if (buf.size() != slot_bytes_)
        buf.resize(slot_bytes_);
    return buf;
}

} // namespace hcc::tee
