#include "tee/tdx.hpp"

#include "common/log.hpp"
#include "fault/fault.hpp"

namespace hcc::tee {

TdxModule::TdxModule(bool cc_enabled, obs::Registry *obs,
                     fault::Injector *fault)
    : cc_(cc_enabled), fault_(fault)
{
    if (obs) {
        obs_hypercalls_ = {&obs->counter("tee.tdx.hypercalls"),
                           &obs->counter("tee.tdx.hypercall_time_ps")};
        obs_seamcalls_ = {&obs->counter("tee.tdx.seamcalls"),
                          &obs->counter("tee.tdx.seamcall_time_ps")};
        obs_vmexits_ = {&obs->counter("tee.tdx.vmexits"),
                        &obs->counter("tee.tdx.vmexit_time_ps")};
        obs_pages_converted_ =
            {&obs->counter("tee.tdx.pages_converted"),
             &obs->counter("tee.tdx.page_convert_time_ps")};
        obs_dma_allocs_ = {&obs->counter("tee.tdx.dma_allocs"),
                           &obs->counter("tee.tdx.dma_alloc_time_ps")};
    }
}

SimTime
TdxModule::guestHostRoundTrips(int count)
{
    HCC_ASSERT(count >= 0, "negative round-trip count");
    if (count == 0)
        return 0;
    if (fault_ && fault_->shouldInject(fault::Site::TdxEptStorm)) {
        // EPT-violation storm: the batch of exits re-faults, costing
        // a burst of extra transitions before forward progress.
        const SimTime per = cc_ ? calib::kTdxHypercallLatency
                                : calib::kVmcallLatency;
        fault_->recordRecovery(fault::Site::TdxEptStorm,
                               per * fault::kEptStormExits);
        count += fault::kEptStormExits;
    }
    if (cc_) {
        const SimTime t = calib::kTdxHypercallLatency * count;
        stats_.hypercalls += static_cast<std::uint64_t>(count);
        stats_.hypercall_time += t;
        obs_hypercalls_.add(static_cast<std::uint64_t>(count), t);
        return t;
    }
    const SimTime t = calib::kVmcallLatency * count;
    stats_.vmexits += static_cast<std::uint64_t>(count);
    stats_.vmexit_time += t;
    obs_vmexits_.add(static_cast<std::uint64_t>(count), t);
    return t;
}

SimTime
TdxModule::seamcalls(int count)
{
    HCC_ASSERT(count >= 0, "negative seamcall count");
    if (!cc_ || count == 0)
        return 0;
    const SimTime t = calib::kSeamcallLatency * count;
    stats_.seamcalls += static_cast<std::uint64_t>(count);
    stats_.seamcall_time += t;
    obs_seamcalls_.add(static_cast<std::uint64_t>(count), t);
    return t;
}

SimTime
TdxModule::convertPages(Bytes bytes)
{
    if (!cc_ || bytes == 0)
        return 0;
    const Bytes pages =
        (bytes + calib::kUvmPageBytes - 1) / calib::kUvmPageBytes;
    const SimTime t =
        calib::kPageConvertPerPage * static_cast<SimTime>(pages);
    stats_.pages_converted += pages;
    stats_.page_convert_time += t;
    obs_pages_converted_.add(pages, t);
    return t;
}

SimTime
TdxModule::dmaAlloc(Bytes bytes)
{
    if (!cc_)
        return 0;
    SimTime t = calib::kDmaAllocFixed;
    stats_.dma_allocs += 1;
    stats_.dma_alloc_time += calib::kDmaAllocFixed;
    obs_dma_allocs_.add(1, calib::kDmaAllocFixed);
    t += convertPages(bytes);
    return t;
}

SimTime
TdxModule::mmioDoorbell()
{
    if (cc_) {
        // Trapped via #VE and forwarded as a hypercall.
        stats_.hypercalls += 1;
        stats_.hypercall_time += calib::kMmioDoorbellTd;
        obs_hypercalls_.add(1, calib::kMmioDoorbellTd);
        return calib::kMmioDoorbellTd;
    }
    return calib::kMmioDoorbellBase;
}

} // namespace hcc::tee
