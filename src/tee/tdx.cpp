#include "tee/tdx.hpp"

#include "common/log.hpp"

namespace hcc::tee {

TdxModule::TdxModule(bool cc_enabled)
    : cc_(cc_enabled)
{}

SimTime
TdxModule::guestHostRoundTrips(int count)
{
    HCC_ASSERT(count >= 0, "negative round-trip count");
    if (count == 0)
        return 0;
    if (cc_) {
        const SimTime t = calib::kTdxHypercallLatency * count;
        stats_.hypercalls += static_cast<std::uint64_t>(count);
        stats_.hypercall_time += t;
        return t;
    }
    const SimTime t = calib::kVmcallLatency * count;
    stats_.vmexits += static_cast<std::uint64_t>(count);
    stats_.vmexit_time += t;
    return t;
}

SimTime
TdxModule::seamcalls(int count)
{
    HCC_ASSERT(count >= 0, "negative seamcall count");
    if (!cc_ || count == 0)
        return 0;
    const SimTime t = calib::kSeamcallLatency * count;
    stats_.seamcalls += static_cast<std::uint64_t>(count);
    stats_.seamcall_time += t;
    return t;
}

SimTime
TdxModule::convertPages(Bytes bytes)
{
    if (!cc_ || bytes == 0)
        return 0;
    const Bytes pages =
        (bytes + calib::kUvmPageBytes - 1) / calib::kUvmPageBytes;
    const SimTime t =
        calib::kPageConvertPerPage * static_cast<SimTime>(pages);
    stats_.pages_converted += pages;
    stats_.page_convert_time += t;
    return t;
}

SimTime
TdxModule::dmaAlloc(Bytes bytes)
{
    if (!cc_)
        return 0;
    SimTime t = calib::kDmaAllocFixed;
    stats_.dma_allocs += 1;
    stats_.dma_alloc_time += calib::kDmaAllocFixed;
    t += convertPages(bytes);
    return t;
}

SimTime
TdxModule::mmioDoorbell()
{
    if (cc_) {
        // Trapped via #VE and forwarded as a hypercall.
        stats_.hypercalls += 1;
        stats_.hypercall_time += calib::kMmioDoorbellTd;
        return calib::kMmioDoorbellTd;
    }
    return calib::kMmioDoorbellBase;
}

} // namespace hcc::tee
