/**
 * @file
 * The CC transfer path: software AES-GCM through the bounce buffer.
 *
 * Under CC every CPU<->GPU copy follows the five steps of Sec. VI-A:
 *   a) prepare data in TD-private memory,
 *   b) encrypt with software AES-GCM (AES-NI, single worker thread
 *      unless the PipeLLM-style ablation raises the worker count),
 *   c) copy ciphertext into the hypervisor-managed bounce buffer,
 *   d) DMA from the bounce buffer to the GPU,
 *   e) decrypt on the GPU into HBM.
 * Steps b+c run serially on one CPU worker per chunk; successive
 * chunks pipeline across the worker, the PCIe link and the GPU
 * crypto engine.  The resulting steady-state throughput is
 * 1/(1/GCM + 1/bounce-copy) ~ 3.03 GB/s, the paper's measured CC
 * peak, and small transfers are dominated by the fixed hypercall and
 * setup costs — reproducing both ends of Fig. 4a.
 *
 * The class also implements the path *functionally*: real bytes are
 * sealed with the from-scratch AES-GCM, staged through real bounce
 * slots, and opened on the other side.  The fault::Injector's stage
 * hook exposes every staged ciphertext chunk while it sits in
 * untrusted shared memory, so integrity tests and fault campaigns
 * prove the guarantee through one mechanism; authentication failures
 * surface as recoverable Status values after bounded retry.
 */

#ifndef HCC_TEE_SECURE_CHANNEL_HPP
#define HCC_TEE_SECURE_CHANNEL_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/calibration.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "crypto/cpu_crypto_model.hpp"
#include "crypto/gcm.hpp"
#include "pcie/link.hpp"
#include "sim/timeline.hpp"
#include "tee/bounce_buffer.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace hcc::tee {

/**
 * Transfer/compute overlap tier of the channel scheduler.
 *
 *  - None: the serial baseline of Sec. VI-A — chunk N+1's encryption
 *    starts only once chunk N has fully landed on the GPU.
 *  - DoubleBuffer: the paper's coarse mitigation — the next chunk may
 *    seal while the previous one occupies the wire, but seals stay
 *    serialized (one staging buffer ahead).
 *  - Speculative: PipeLLM-style IV/sequence-number prediction — up to
 *    spec_depth chunks seal concurrently ahead of the link; a missed
 *    prediction (fault::Site::SpecMiss) re-seals the chunk under the
 *    real IV and is charged as a recovery span.
 */
enum class OverlapMode
{
    None,
    DoubleBuffer,
    Speculative,
};

/** Canonical flag spelling: "none", "double-buffer", "speculative". */
const char *overlapModeName(OverlapMode mode);

/** Parse a canonical overlap-mode name; nullopt when unknown. */
std::optional<OverlapMode> parseOverlapMode(const std::string &name);

/** Tunables of the secure transfer path. */
struct ChannelConfig
{
    /** Bulk cipher used for PCIe traffic. */
    crypto::CipherAlgo algo = crypto::CipherAlgo::AesGcm128;
    /** Parallel CPU encryption workers (1 = stock driver). */
    int crypto_workers = 1;
    /** Staging chunk size. */
    Bytes chunk_bytes = calib::kBounceChunkBytes;
    /** Bounce pool slot count. */
    int bounce_slots = calib::kBounceSlots;
    /** Streaming copy bandwidth into the bounce buffer, GB/s. */
    double bounce_copy_gbps = calib::kBounceCopyGBs;
    /** GPU-side crypto engine bandwidth, GB/s. */
    double gpu_crypto_gbps = calib::kGpuCryptoGBs;
    /**
     * Ablation: hypothetical TEE-IO / IDE hardware path — skips the
     * software crypto and bounce staging entirely and runs DMA at a
     * slightly taxed line rate.
     */
    bool tee_io = false;
    /** CPU whose crypto throughput is modeled. */
    crypto::CpuKind cpu = crypto::CpuKind::IntelEmr;
    /** Scheduler overlap tier (see OverlapMode). */
    OverlapMode overlap = OverlapMode::None;
    /**
     * Speculation depth: chunks sealed ahead under predicted IVs
     * (Speculative mode only; the crypto-worker pool is widened to at
     * least this many lanes so the depth is actually reachable).
     */
    int spec_depth = 4;
};

/**
 * Timing breakdown of one scheduled secure transfer.
 *
 * Under OverlapMode::None, encrypt_busy carries the fused steps b+c
 * (encrypt + bounce copy) and stage_busy stays 0; the pipelined
 * modes split them: encrypt_busy is the seal stage alone (including
 * wasted speculative passes) and stage_busy the bounce-copy stage.
 */
struct TransferTiming
{
    sim::Interval total;
    SimTime encrypt_busy = 0;   //!< CPU worker busy time (step b [+c])
    SimTime stage_busy = 0;     //!< bounce-copy stage busy (step c)
    SimTime dma_busy = 0;       //!< link occupancy (step d)
    SimTime gpu_crypto_busy = 0;//!< GPU engine busy time (step e)
    SimTime fixed_overhead = 0; //!< hypercalls, doorbell, setup
    /** Seal time hidden behind the previous chunk's DMA interval. */
    SimTime hidden_crypto = 0;
    int chunks = 0;
};

/**
 * One CC-mode transfer channel between a TD and its GPU.
 */
class SecureChannel
{
  public:
    /**
     * @param obs optional stats sink; publishes
     *        "tee.channel.{transfers,chunks}",
     *        "tee.bounce.bytes_{h2d,d2h}",
     *        "crypto.aes_gcm.blocks" and, via the owned pool/GCM,
     *        the "tee.bounce.*" and "crypto.aes_gcm.*" stats.  The
     *        internal timelines attach as
     *        "sim.timeline.cc_{crypto,gpu_crypto}.*"; the pipelined
     *        overlap modes additionally attach the bounce-copy stage
     *        as "sim.timeline.cc_stage.*" and publish the per-stage
     *        "tee.channel.pipeline.{seal_busy_ps,stage_busy_ps,
     *        dma_busy_ps,open_busy_ps,hidden_crypto_ps,spec_hits,
     *        spec_misses}" counters (absent under OverlapMode::None
     *        so serial stats dumps stay byte-identical).
     * @param fault optional injector arming the
     *        "channel.tag_mismatch", "bounce.exhausted" and (in
     *        Speculative mode) "spec.miss" sites and carrying the
     *        stage hook of the functional path.
     */
    SecureChannel(const ChannelConfig &config,
                  const SpdmSession &session,
                  obs::Registry *obs = nullptr,
                  fault::Injector *fault = nullptr);

    /**
     * Schedule a transfer of @p bytes in direction @p dir, ready at
     * @p ready, through @p link, charging TDX costs to @p tdx.
     */
    TransferTiming scheduleTransfer(SimTime ready, Bytes bytes,
                                    pcie::Direction dir,
                                    pcie::PcieLink &link,
                                    TdxModule &tdx);

    /**
     * Asymptotic throughput of the path in GB/s (ignoring fixed
     * costs): the bottleneck pipeline stage.
     */
    double steadyStateGbps(const pcie::PcieLink &link,
                           pcie::Direction dir
                               = pcie::Direction::HostToDevice) const;

    /**
     * Unpipelined duration of pushing @p bytes through the path once
     * (encrypt + copy + DMA + GPU decrypt back-to-back), with no
     * fixed control-path costs and no resource reservations.  Used
     * for UVM fault-batch migration, whose batches are far below the
     * pipelining granularity.
     */
    SimTime transferDuration(Bytes bytes, const pcie::PcieLink &link,
                             pcie::Direction dir
                                 = pcie::Direction::HostToDevice)
        const;

    /**
     * Functionally move bytes through the encrypted path (the data
     * plane is direction-agnostic: both directions seal, stage and
     * open the same way).
     *
     * With crypto_workers > 1 the seal and open phases run on a real
     * std::thread worker pool (chunks are independent: each gets its
     * own pre-assigned IV and disjoint src/dst ranges), so the
     * PipeLLM-style ablation parallelizes actual byte work, not just
     * the timing model.  The injector's stage hook always runs
     * sequentially in chunk order, between the phases.  Results are
     * bit-identical to the single-worker path.
     *
     * A chunk that fails authentication (a tampered stage or an
     * injected tag mismatch) is retried under an attempt-derived IV
     * up to fault::kMaxTransferAttempts times; persistent failure
     * returns an IntegrityError Status identifying the chunk.  Each
     * chunk consumes exactly one IV-sequence draw no matter how many
     * retries it takes, so subsequent transfers emit identical wire
     * bytes regardless of crypto_workers.
     *
     * @param src plaintext source.
     * @param dst destination, same size.
     * @return Ok iff every chunk authenticated on the far side.
     */
    [[nodiscard]] Status transferFunctional(
        std::span<const std::uint8_t> src,
        std::span<std::uint8_t> dst);

    const ChannelConfig &config() const { return config_; }
    const BounceBufferPool &bouncePool() const { return pool_; }

    /** Total bytes scheduled through the channel so far. */
    Bytes bytesTransferred() const { return bytes_; }

    /**
     * Snapshot support: worker/engine timeline positions, the bounce
     * pool, the IV sequence counter and the byte total.  The AES-GCM
     * context is keyed at construction from the SPDM session and is
     * immutable afterwards, so it is not captured.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        crypto_workers_.snapState(ar);
        gpu_crypto_.snapState(ar);
        stage_.snapState(ar);
        ar.pod(seal_tail_);
        pool_.snapState(ar);
        iv_seq_.snapState(ar);
        ar.pod(bytes_);
        // Re-acquire the pipeline counter handles after a restore:
        // the constructor registers them eagerly for the pipelined
        // overlap modes, so they pre-date every capture and survive
        // the registry's restore (which only erases entries that
        // post-date it).  The registry's "obs" section loads before
        // this "channel" section (Context::restoreSnapshot order),
        // so counter() resolves against restored state.  Dropping
        // the handles instead would silently lose the replayed
        // suffix's pipeline accounting in fork/replay campaigns.
        if constexpr (Ar::kLoading) {
            if (obs_ != nullptr
                && config_.overlap != OverlapMode::None) {
                obs_pipe_seal_ = &obs_->counter(
                    "tee.channel.pipeline.seal_busy_ps");
                obs_pipe_stage_ = &obs_->counter(
                    "tee.channel.pipeline.stage_busy_ps");
                obs_pipe_dma_ = &obs_->counter(
                    "tee.channel.pipeline.dma_busy_ps");
                obs_pipe_open_ = &obs_->counter(
                    "tee.channel.pipeline.open_busy_ps");
                obs_pipe_hidden_ = &obs_->counter(
                    "tee.channel.pipeline.hidden_crypto_ps");
                obs_pipe_spec_hits_ = &obs_->counter(
                    "tee.channel.pipeline.spec_hits");
                obs_pipe_spec_misses_ = &obs_->counter(
                    "tee.channel.pipeline.spec_misses");
            } else {
                obs_pipe_seal_ = nullptr;
                obs_pipe_stage_ = nullptr;
                obs_pipe_dma_ = nullptr;
                obs_pipe_open_ = nullptr;
                obs_pipe_hidden_ = nullptr;
                obs_pipe_spec_hits_ = nullptr;
                obs_pipe_spec_misses_ = nullptr;
            }
        }
    }

  private:
    /** Worker time for encrypt + bounce copy of @p bytes. */
    SimTime workerChunkCost(Bytes bytes, pcie::Direction dir) const;

    /** Bounce-copy (+ D2H scrub) time for @p bytes: step c alone. */
    SimTime stageCopyCost(Bytes bytes, pcie::Direction dir) const;

    /** The serial (OverlapMode::None) chunk loop; returns done time. */
    SimTime scheduleSerial(TransferTiming &timing, SimTime t,
                           Bytes bytes, pcie::Direction dir,
                           pcie::PcieLink &link);

    /** The per-stage overlapped chunk pipeline; returns done time. */
    SimTime schedulePipelined(TransferTiming &timing, SimTime t,
                              Bytes bytes, pcie::Direction dir,
                              pcie::PcieLink &link);

    /**
     * Seal/stage/open one chunk, starting at @p first_attempt of the
     * fault::kMaxTransferAttempts budget.  Every attempt derives its
     * IV from the chunk's single @p primary sequence draw, so retries
     * never consume extra IV-stream positions.
     */
    Status transferChunk(std::span<const std::uint8_t> src,
                         std::span<std::uint8_t> dst,
                         std::size_t off,
                         const crypto::GcmIv &primary,
                         int first_attempt);

    /** Expose a staged chunk to the fault layer (corrupt + hook). */
    void stageFaults(std::vector<std::uint8_t> &stage);

    /** Single-worker functional path (chunk-at-a-time). */
    Status transferFunctionalSequential(
        std::span<const std::uint8_t> src,
        std::span<std::uint8_t> dst);

    /** Multi-worker functional path (parallel seal/open phases). */
    Status transferFunctionalParallel(
        std::span<const std::uint8_t> src,
        std::span<std::uint8_t> dst);

    ChannelConfig config_;
    crypto::CpuCryptoModel cpu_model_;
    sim::TimelinePool crypto_workers_;
    sim::Timeline gpu_crypto_;
    /** Bounce-copy stage timeline (pipelined overlap modes only). */
    sim::Timeline stage_;
    /** End of the latest seal; serializes DoubleBuffer seals. */
    SimTime seal_tail_ = 0;
    BounceBufferPool pool_;
    crypto::AesGcm gcm_;
    crypto::GcmIvSequence iv_seq_;
    Bytes bytes_ = 0;
    obs::Registry *obs_ = nullptr;
    fault::Injector *fault_ = nullptr;
    obs::Counter *obs_transfers_ = nullptr;
    obs::Counter *obs_chunks_ = nullptr;
    obs::Counter *obs_bytes_h2d_ = nullptr;
    obs::Counter *obs_bytes_d2h_ = nullptr;
    obs::Counter *obs_gcm_blocks_ = nullptr;
    // Per-stage pipeline counters; created only under the pipelined
    // overlap modes so OverlapMode::None dumps stay byte-identical.
    obs::Counter *obs_pipe_seal_ = nullptr;
    obs::Counter *obs_pipe_stage_ = nullptr;
    obs::Counter *obs_pipe_dma_ = nullptr;
    obs::Counter *obs_pipe_open_ = nullptr;
    obs::Counter *obs_pipe_hidden_ = nullptr;
    obs::Counter *obs_pipe_spec_hits_ = nullptr;
    obs::Counter *obs_pipe_spec_misses_ = nullptr;
};

} // namespace hcc::tee

#endif // HCC_TEE_SECURE_CHANNEL_HPP
