/**
 * @file
 * The CC transfer path: software AES-GCM through the bounce buffer.
 *
 * Under CC every CPU<->GPU copy follows the five steps of Sec. VI-A:
 *   a) prepare data in TD-private memory,
 *   b) encrypt with software AES-GCM (AES-NI, single worker thread
 *      unless the PipeLLM-style ablation raises the worker count),
 *   c) copy ciphertext into the hypervisor-managed bounce buffer,
 *   d) DMA from the bounce buffer to the GPU,
 *   e) decrypt on the GPU into HBM.
 * Steps b+c run serially on one CPU worker per chunk; successive
 * chunks pipeline across the worker, the PCIe link and the GPU
 * crypto engine.  The resulting steady-state throughput is
 * 1/(1/GCM + 1/bounce-copy) ~ 3.03 GB/s, the paper's measured CC
 * peak, and small transfers are dominated by the fixed hypercall and
 * setup costs — reproducing both ends of Fig. 4a.
 *
 * The class also implements the path *functionally*: real bytes are
 * sealed with the from-scratch AES-GCM, staged through real bounce
 * slots, and opened on the other side.  The fault::Injector's stage
 * hook exposes every staged ciphertext chunk while it sits in
 * untrusted shared memory, so integrity tests and fault campaigns
 * prove the guarantee through one mechanism; authentication failures
 * surface as recoverable Status values after bounded retry.
 */

#ifndef HCC_TEE_SECURE_CHANNEL_HPP
#define HCC_TEE_SECURE_CHANNEL_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/calibration.hpp"
#include "common/status.hpp"
#include "common/units.hpp"
#include "crypto/cpu_crypto_model.hpp"
#include "crypto/gcm.hpp"
#include "pcie/link.hpp"
#include "sim/timeline.hpp"
#include "tee/bounce_buffer.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace hcc::tee {

/** Tunables of the secure transfer path. */
struct ChannelConfig
{
    /** Bulk cipher used for PCIe traffic. */
    crypto::CipherAlgo algo = crypto::CipherAlgo::AesGcm128;
    /** Parallel CPU encryption workers (1 = stock driver). */
    int crypto_workers = 1;
    /** Staging chunk size. */
    Bytes chunk_bytes = calib::kBounceChunkBytes;
    /** Bounce pool slot count. */
    int bounce_slots = calib::kBounceSlots;
    /** Streaming copy bandwidth into the bounce buffer, GB/s. */
    double bounce_copy_gbps = calib::kBounceCopyGBs;
    /** GPU-side crypto engine bandwidth, GB/s. */
    double gpu_crypto_gbps = calib::kGpuCryptoGBs;
    /**
     * Ablation: hypothetical TEE-IO / IDE hardware path — skips the
     * software crypto and bounce staging entirely and runs DMA at a
     * slightly taxed line rate.
     */
    bool tee_io = false;
    /** CPU whose crypto throughput is modeled. */
    crypto::CpuKind cpu = crypto::CpuKind::IntelEmr;
};

/** Timing breakdown of one scheduled secure transfer. */
struct TransferTiming
{
    sim::Interval total;
    SimTime encrypt_busy = 0;   //!< CPU worker busy time (steps b+c)
    SimTime dma_busy = 0;       //!< link occupancy (step d)
    SimTime gpu_crypto_busy = 0;//!< GPU engine busy time (step e)
    SimTime fixed_overhead = 0; //!< hypercalls, doorbell, setup
    int chunks = 0;
};

/**
 * One CC-mode transfer channel between a TD and its GPU.
 */
class SecureChannel
{
  public:
    /**
     * @param obs optional stats sink; publishes
     *        "tee.channel.{transfers,chunks}",
     *        "tee.bounce.bytes_{h2d,d2h}",
     *        "crypto.aes_gcm.blocks" and, via the owned pool/GCM,
     *        the "tee.bounce.*" and "crypto.aes_gcm.*" stats.  The
     *        internal timelines attach as
     *        "sim.timeline.cc_{crypto,gpu_crypto}.*".
     * @param fault optional injector arming the
     *        "channel.tag_mismatch" and "bounce.exhausted" sites and
     *        carrying the stage hook of the functional path.
     */
    SecureChannel(const ChannelConfig &config,
                  const SpdmSession &session,
                  obs::Registry *obs = nullptr,
                  fault::Injector *fault = nullptr);

    /**
     * Schedule a transfer of @p bytes in direction @p dir, ready at
     * @p ready, through @p link, charging TDX costs to @p tdx.
     */
    TransferTiming scheduleTransfer(SimTime ready, Bytes bytes,
                                    pcie::Direction dir,
                                    pcie::PcieLink &link,
                                    TdxModule &tdx);

    /**
     * Asymptotic throughput of the path in GB/s (ignoring fixed
     * costs): the bottleneck pipeline stage.
     */
    double steadyStateGbps(const pcie::PcieLink &link,
                           pcie::Direction dir
                               = pcie::Direction::HostToDevice) const;

    /**
     * Unpipelined duration of pushing @p bytes through the path once
     * (encrypt + copy + DMA + GPU decrypt back-to-back), with no
     * fixed control-path costs and no resource reservations.  Used
     * for UVM fault-batch migration, whose batches are far below the
     * pipelining granularity.
     */
    SimTime transferDuration(Bytes bytes, const pcie::PcieLink &link,
                             pcie::Direction dir
                                 = pcie::Direction::HostToDevice)
        const;

    /**
     * Functionally move bytes through the encrypted path (the data
     * plane is direction-agnostic: both directions seal, stage and
     * open the same way).
     *
     * With crypto_workers > 1 the seal and open phases run on a real
     * std::thread worker pool (chunks are independent: each gets its
     * own pre-assigned IV and disjoint src/dst ranges), so the
     * PipeLLM-style ablation parallelizes actual byte work, not just
     * the timing model.  The injector's stage hook always runs
     * sequentially in chunk order, between the phases.  Results are
     * bit-identical to the single-worker path.
     *
     * A chunk that fails authentication (a tampered stage or an
     * injected tag mismatch) is retried with a fresh IV up to
     * fault::kMaxTransferAttempts times; persistent failure returns
     * an IntegrityError Status identifying the chunk.
     *
     * @param src plaintext source.
     * @param dst destination, same size.
     * @return Ok iff every chunk authenticated on the far side.
     */
    [[nodiscard]] Status transferFunctional(
        std::span<const std::uint8_t> src,
        std::span<std::uint8_t> dst);

    const ChannelConfig &config() const { return config_; }
    const BounceBufferPool &bouncePool() const { return pool_; }

    /** Total bytes scheduled through the channel so far. */
    Bytes bytesTransferred() const { return bytes_; }

    /**
     * Snapshot support: worker/engine timeline positions, the bounce
     * pool, the IV sequence counter and the byte total.  The AES-GCM
     * context is keyed at construction from the SPDM session and is
     * immutable afterwards, so it is not captured.
     */
    template <class Ar>
    void
    snapState(Ar &ar)
    {
        crypto_workers_.snapState(ar);
        gpu_crypto_.snapState(ar);
        pool_.snapState(ar);
        iv_seq_.snapState(ar);
        ar.pod(bytes_);
    }

  private:
    /** Worker time for encrypt + bounce copy of @p bytes. */
    SimTime workerChunkCost(Bytes bytes, pcie::Direction dir) const;

    /**
     * Seal/stage/open one chunk, retrying with fresh IVs up to
     * @p attempts times before giving up with IntegrityError.
     */
    Status transferChunk(std::span<const std::uint8_t> src,
                         std::span<std::uint8_t> dst,
                         std::size_t off, int attempts);

    /** Expose a staged chunk to the fault layer (corrupt + hook). */
    void stageFaults(std::vector<std::uint8_t> &stage);

    /** Single-worker functional path (chunk-at-a-time). */
    Status transferFunctionalSequential(
        std::span<const std::uint8_t> src,
        std::span<std::uint8_t> dst);

    /** Multi-worker functional path (parallel seal/open phases). */
    Status transferFunctionalParallel(
        std::span<const std::uint8_t> src,
        std::span<std::uint8_t> dst);

    ChannelConfig config_;
    crypto::CpuCryptoModel cpu_model_;
    sim::TimelinePool crypto_workers_;
    sim::Timeline gpu_crypto_;
    BounceBufferPool pool_;
    crypto::AesGcm gcm_;
    crypto::GcmIvSequence iv_seq_;
    Bytes bytes_ = 0;
    obs::Registry *obs_ = nullptr;
    fault::Injector *fault_ = nullptr;
    obs::Counter *obs_transfers_ = nullptr;
    obs::Counter *obs_chunks_ = nullptr;
    obs::Counter *obs_bytes_h2d_ = nullptr;
    obs::Counter *obs_bytes_d2h_ = nullptr;
    obs::Counter *obs_gcm_blocks_ = nullptr;
};

} // namespace hcc::tee

#endif // HCC_TEE_SECURE_CHANNEL_HPP
