#include "tee/secure_channel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/log.hpp"
#include "fault/fault.hpp"

namespace hcc::tee {

namespace {

/**
 * Crypto-worker pool width for a config: Speculative mode widens the
 * pool to the speculation depth so that many seals can actually run
 * ahead of the link.
 */
int
cryptoPoolWidth(const ChannelConfig &config)
{
    const int workers = std::max(1, config.crypto_workers);
    if (config.overlap == OverlapMode::Speculative)
        return std::max(workers, config.spec_depth);
    return workers;
}

/**
 * IV for retry attempt @p attempt (1-based) of a chunk whose primary
 * sequence draw is @p primary.  Attempt 1 is the primary itself;
 * retries re-key byte 4 (the top byte of the 64-bit counter) with
 * the attempt index.  The variants are unique as long as fewer than
 * 2^56 IVs have been issued on the channel — far beyond any transfer
 * volume the model sees — and, crucially, derivation consumes no
 * extra sequence positions, so the IV stream advances by exactly one
 * per chunk on every functional path.
 */
crypto::GcmIv
ivForAttempt(const crypto::GcmIv &primary, int attempt)
{
    crypto::GcmIv iv = primary;
    if (attempt > 1)
        iv[4] = static_cast<std::uint8_t>(attempt - 1);
    return iv;
}

} // namespace

const char *
overlapModeName(OverlapMode mode)
{
    switch (mode) {
    case OverlapMode::None:
        return "none";
    case OverlapMode::DoubleBuffer:
        return "double-buffer";
    case OverlapMode::Speculative:
        return "speculative";
    }
    return "none";
}

std::optional<OverlapMode>
parseOverlapMode(const std::string &name)
{
    for (const OverlapMode mode :
         {OverlapMode::None, OverlapMode::DoubleBuffer,
          OverlapMode::Speculative})
        if (name == overlapModeName(mode))
            return mode;
    return std::nullopt;
}

SecureChannel::SecureChannel(const ChannelConfig &config,
                             const SpdmSession &session,
                             obs::Registry *obs,
                             fault::Injector *fault)
    : config_(config),
      cpu_model_(config.cpu),
      crypto_workers_("cc.crypto", cryptoPoolWidth(config)),
      gpu_crypto_("cc.gpu_crypto"),
      stage_("cc.stage"),
      pool_(config.chunk_bytes, config.bounce_slots, obs),
      gcm_(session.key(), obs),
      iv_seq_(static_cast<std::uint32_t>(session.sessionId())),
      obs_(obs),
      fault_(fault)
{
    if (config.chunk_bytes == 0)
        fatal("secure channel chunk size must be positive");
    if (config.crypto_workers < 1)
        fatal("secure channel needs at least one crypto worker");
    if (config.overlap == OverlapMode::Speculative
        && config.spec_depth < 1)
        fatal("speculative overlap needs a positive spec depth");
    if (config_.overlap == OverlapMode::Speculative
        && config_.spec_depth > std::max(1, config_.crypto_workers)) {
        // The seal pool is silently widened (cryptoPoolWidth) past
        // the configured worker count so the requested depth is
        // reachable.  Warn once per process and count the condition
        // per channel, so ablation dumps show which cells depended
        // on the implicit widening rather than on --crypto-workers.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("speculative spec_depth %d exceeds the %d "
                 "configured crypto worker(s); widening the seal "
                 "pool to the depth",
                 config_.spec_depth,
                 std::max(1, config_.crypto_workers));
        if (obs)
            obs->counter("tee.channel.spec_depth_clamped").add(1);
    }
    if (obs) {
        crypto_workers_.attachObs(obs, "sim.timeline.cc_crypto");
        gpu_crypto_.attachObs(obs, "sim.timeline.cc_gpu_crypto");
        obs_transfers_ = &obs->counter("tee.channel.transfers");
        obs_chunks_ = &obs->counter("tee.channel.chunks");
        obs_bytes_h2d_ = &obs->counter("tee.bounce.bytes_h2d");
        obs_bytes_d2h_ = &obs->counter("tee.bounce.bytes_d2h");
        obs_gcm_blocks_ = &obs->counter("crypto.aes_gcm.blocks");
        if (config_.overlap != OverlapMode::None) {
            stage_.attachObs(obs, "sim.timeline.cc_stage");
            obs_pipe_seal_ =
                &obs->counter("tee.channel.pipeline.seal_busy_ps");
            obs_pipe_stage_ =
                &obs->counter("tee.channel.pipeline.stage_busy_ps");
            obs_pipe_dma_ =
                &obs->counter("tee.channel.pipeline.dma_busy_ps");
            obs_pipe_open_ =
                &obs->counter("tee.channel.pipeline.open_busy_ps");
            obs_pipe_hidden_ = &obs->counter(
                "tee.channel.pipeline.hidden_crypto_ps");
            obs_pipe_spec_hits_ =
                &obs->counter("tee.channel.pipeline.spec_hits");
            obs_pipe_spec_misses_ =
                &obs->counter("tee.channel.pipeline.spec_misses");
        }
    }
}

SimTime
SecureChannel::stageCopyCost(Bytes bytes, pcie::Direction dir) const
{
    // Step c: a streaming copy of the ciphertext into (or out of)
    // the shared slot.
    SimTime copy = transferTime(bytes, config_.bounce_copy_gbps);
    if (dir == pcie::Direction::DeviceToHost) {
        // Inbound data lands in shared bounce pages and must be
        // scrubbed into TD-private pages with per-page handling.
        const Bytes pages =
            (bytes + calib::kUvmPageBytes - 1) / calib::kUvmPageBytes;
        copy += calib::kCcInboundPerPage
            * static_cast<SimTime>(pages);
    }
    return copy;
}

SimTime
SecureChannel::workerChunkCost(Bytes bytes, pcie::Direction dir) const
{
    // Steps b + c run serially on one worker: authenticated
    // encryption at the modeled single-core rate, then the staging
    // copy.
    return cpu_model_.cost(config_.algo, bytes, 1)
        + stageCopyCost(bytes, dir);
}

TransferTiming
SecureChannel::scheduleTransfer(SimTime ready, Bytes bytes,
                                pcie::Direction dir,
                                pcie::PcieLink &link, TdxModule &tdx)
{
    TransferTiming timing;
    bytes_ += bytes;
    if (obs_transfers_) {
        obs_transfers_->add(1);
        (dir == pcie::Direction::HostToDevice ? obs_bytes_h2d_
                                              : obs_bytes_d2h_)
            ->add(bytes);
    }

    // Fixed per-transfer control path: command submission doorbell
    // plus a guest<->host round trip to program the copy engine.
    SimTime t = ready;
    t += tdx.mmioDoorbell();
    t += tdx.guestHostRoundTrips(1);
    timing.fixed_overhead = t - ready;

    if (bytes == 0) {
        timing.total = {ready, t};
        return timing;
    }

    if (config_.tee_io) {
        // Hardware link encryption: DMA straight from private memory
        // at a small bandwidth tax, no software stages.
        const double gbps =
            link.config().effective_gbps * calib::kTeeIoEfficiency;
        const auto iv = link.dma(t, bytes, dir, gbps);
        timing.dma_busy = iv.duration();
        timing.chunks = 1;
        timing.total = {ready, iv.end};
        return timing;
    }

    const SimTime done = config_.overlap == OverlapMode::None
        ? scheduleSerial(timing, t, bytes, dir, link)
        : schedulePipelined(timing, t, bytes, dir, link);
    timing.total = {ready, done};
    return timing;
}

SimTime
SecureChannel::scheduleSerial(TransferTiming &timing, SimTime t,
                              Bytes bytes, pcie::Direction dir,
                              pcie::PcieLink &link)
{
    // Chunked pipeline: worker (encrypt+copy) -> DMA -> GPU crypto.
    // For D2H the stages run in the reverse order with the same
    // bottleneck structure; we model both with the same three-stage
    // chain since only the bottleneck and fill time matter.
    SimTime done = t;
    Bytes remaining = bytes;
    while (remaining > 0) {
        const Bytes chunk =
            std::min<Bytes>(remaining, config_.chunk_bytes);
        remaining -= chunk;
        ++timing.chunks;

        // A chunk whose tag fails authentication on the GPU is
        // re-encrypted (fresh IV), re-staged and re-sent, so every
        // attempt re-occupies all three stages; retries start after
        // an exponential backoff, and exhaustion tears the session
        // down for a full re-attestation before the channel moves on.
        SimTime chunk_ready = t;
        SimTime first_try_end = 0;
        for (int attempt = 1;; ++attempt) {
            if (obs_chunks_) {
                obs_chunks_->add(1);
                // One 16-byte AES block per 16 ciphertext bytes,
                // rounded up -- the work both the CPU and GPU crypto
                // stages do.
                obs_gcm_blocks_->add((chunk + 15) / 16);
            }

            const auto worker = crypto_workers_.reserve(
                chunk_ready, workerChunkCost(chunk, dir));
            timing.encrypt_busy += worker.duration();

            // The ciphertext needs a bounce slot from the moment the
            // copy lands until the DMA drains it.
            auto slot = pool_.acquire(worker.end);
            if (fault_
                && fault_->shouldInject(fault::Site::BounceExhausted)) {
                // Slot exhaustion: the swiotlb allocator found no
                // slot and the driver stalls until the whole pool
                // has drained before retrying the mapping.
                const SimTime drained = std::max(
                    slot.acquired_at, pool_.latestRelease());
                if (drained > slot.acquired_at) {
                    fault_->recordRecoverySpan(
                        fault::Site::BounceExhausted,
                        slot.acquired_at, drained);
                    slot.acquired_at = drained;
                }
            }
            const auto dma = link.dma(slot.acquired_at, chunk, dir);
            timing.dma_busy += dma.duration();
            pool_.release(slot, dma.end);

            const auto gpu = gpu_crypto_.reserve(
                dma.end, transferTime(chunk, config_.gpu_crypto_gbps));
            timing.gpu_crypto_busy += gpu.duration();

            const bool tag_failed = fault_
                && fault_->shouldInject(fault::Site::ChannelTagMismatch);
            if (!tag_failed) {
                if (attempt > 1)
                    fault_->recordRecoverySpan(
                        fault::Site::ChannelTagMismatch,
                        first_try_end, gpu.end);
                done = std::max(done, gpu.end);
                break;
            }
            if (attempt == 1)
                first_try_end = gpu.end;
            if (attempt >= fault::kMaxTransferAttempts) {
                // Give up on the session key: full re-attestation
                // blocks the channel before any further chunk.
                const SimTime resume =
                    gpu.end + SpdmSession::kHandshakeCost;
                fault_->recordRecoverySpan(
                    fault::Site::ChannelTagMismatch,
                    first_try_end, resume);
                t = resume;
                done = std::max(done, resume);
                break;
            }
            chunk_ready = gpu.end + fault::retryBackoff(attempt);
        }
    }

    return done;
}

SimTime
SecureChannel::schedulePipelined(TransferTiming &timing, SimTime t,
                                 Bytes bytes, pcie::Direction dir,
                                 pcie::PcieLink &link)
{
    // Explicit staged pipeline: seal -> bounce-stage -> DMA -> GPU
    // open, each stage on its own timeline so successive chunks
    // overlap per stage.  DoubleBuffer keeps seals serialized behind
    // each other (the classic one-buffer-ahead scheme); Speculative
    // seals at chunk readiness under predicted IVs, so up to the
    // widened worker-pool depth run concurrently ahead of the link.
    const bool speculative =
        config_.overlap == OverlapMode::Speculative;
    SimTime done = t;
    sim::Interval prev_dma{0, 0};
    Bytes remaining = bytes;
    while (remaining > 0) {
        const Bytes chunk =
            std::min<Bytes>(remaining, config_.chunk_bytes);
        remaining -= chunk;
        ++timing.chunks;

        // Retry structure mirrors the serial path: an authentication
        // failure re-runs all stages after an exponential backoff,
        // and exhaustion tears the session down for re-attestation.
        SimTime chunk_ready = t;
        SimTime first_try_end = 0;
        for (int attempt = 1;; ++attempt) {
            if (obs_chunks_) {
                obs_chunks_->add(1);
                obs_gcm_blocks_->add((chunk + 15) / 16);
            }

            // Step b: seal on a crypto worker (encryption only; the
            // staging copy is its own stage below).
            const SimTime seal_cost =
                cpu_model_.cost(config_.algo, chunk, 1);
            SimTime seal_ready = chunk_ready;
            if (!speculative)
                seal_ready = std::max(seal_ready, seal_tail_);
            auto seal =
                crypto_workers_.reserve(seal_ready, seal_cost);
            if (speculative && attempt == 1 && fault_
                && fault_->shouldInject(fault::Site::SpecMiss)) {
                // The predicted IV/sequence number was wrong: the
                // speculatively sealed ciphertext is useless and the
                // chunk re-seals under the real IV.  The wasted pass
                // stays charged to the worker pool.
                const auto reseal =
                    crypto_workers_.reserve(seal.end, seal_cost);
                fault_->recordRecoverySpan(fault::Site::SpecMiss,
                                           seal.end, reseal.end);
                timing.encrypt_busy += seal.duration();
                if (obs_pipe_spec_misses_)
                    obs_pipe_spec_misses_->add(1);
                seal = reseal;
            } else if (speculative && attempt == 1
                       && obs_pipe_spec_hits_) {
                obs_pipe_spec_hits_->add(1);
            }
            seal_tail_ = std::max(seal_tail_, seal.end);
            timing.encrypt_busy += seal.duration();
            // Seal time hidden behind the wire: the part of this
            // seal overlapping the previous chunk's DMA interval.
            if (prev_dma.end > prev_dma.start) {
                const SimTime lo =
                    std::max(seal.start, prev_dma.start);
                const SimTime hi = std::min(seal.end, prev_dma.end);
                if (hi > lo)
                    timing.hidden_crypto += hi - lo;
            }

            // Step c: copy the ciphertext into a bounce slot; the
            // slot is pinned from the copy until the DMA drains it.
            auto slot = pool_.acquire(seal.end);
            if (fault_
                && fault_->shouldInject(fault::Site::BounceExhausted)) {
                const SimTime drained = std::max(
                    slot.acquired_at, pool_.latestRelease());
                if (drained > slot.acquired_at) {
                    fault_->recordRecoverySpan(
                        fault::Site::BounceExhausted,
                        slot.acquired_at, drained);
                    slot.acquired_at = drained;
                }
            }
            const auto stg = stage_.reserve(
                slot.acquired_at, stageCopyCost(chunk, dir));
            timing.stage_busy += stg.duration();

            // Step d: DMA out of the slot.
            const auto dma = link.dma(stg.end, chunk, dir);
            timing.dma_busy += dma.duration();
            pool_.release(slot, dma.end);

            // Step e: the GPU engine authenticates and decrypts.
            const auto gpu = gpu_crypto_.reserve(
                dma.end, transferTime(chunk, config_.gpu_crypto_gbps));
            timing.gpu_crypto_busy += gpu.duration();

            const bool tag_failed = fault_
                && fault_->shouldInject(fault::Site::ChannelTagMismatch);
            if (!tag_failed) {
                if (attempt > 1)
                    fault_->recordRecoverySpan(
                        fault::Site::ChannelTagMismatch,
                        first_try_end, gpu.end);
                prev_dma = dma;
                done = std::max(done, gpu.end);
                break;
            }
            if (attempt == 1)
                first_try_end = gpu.end;
            if (attempt >= fault::kMaxTransferAttempts) {
                const SimTime resume =
                    gpu.end + SpdmSession::kHandshakeCost;
                fault_->recordRecoverySpan(
                    fault::Site::ChannelTagMismatch,
                    first_try_end, resume);
                t = resume;
                done = std::max(done, resume);
                break;
            }
            chunk_ready = gpu.end + fault::retryBackoff(attempt);
        }
    }

    if (obs_pipe_seal_) {
        obs_pipe_seal_->add(
            static_cast<std::uint64_t>(timing.encrypt_busy));
        obs_pipe_stage_->add(
            static_cast<std::uint64_t>(timing.stage_busy));
        obs_pipe_dma_->add(
            static_cast<std::uint64_t>(timing.dma_busy));
        obs_pipe_open_->add(
            static_cast<std::uint64_t>(timing.gpu_crypto_busy));
        obs_pipe_hidden_->add(
            static_cast<std::uint64_t>(timing.hidden_crypto));
    }
    return done;
}

double
SecureChannel::steadyStateGbps(const pcie::PcieLink &link,
                               pcie::Direction dir) const
{
    if (config_.tee_io)
        return link.config().effective_gbps * calib::kTeeIoEfficiency;
    const double link_gbps = link.config().effective_gbps;
    const double chunk = static_cast<double>(config_.chunk_bytes);
    if (config_.overlap == OverlapMode::None) {
        // One worker processes a chunk in workerChunkCost; with w
        // workers w chunks are in flight, scaling the stage rate by w.
        const double one_worker_gbps = chunk
            / (static_cast<double>(
                   workerChunkCost(config_.chunk_bytes, dir))
               * 1e-3);
        const double worker_stage = one_worker_gbps
            * static_cast<double>(crypto_workers_.size());
        return std::min(
            {worker_stage, link_gbps, config_.gpu_crypto_gbps});
    }
    // Pipelined modes: seal and staging copy are separate stages.
    // DoubleBuffer serializes seals (one in flight); Speculative
    // runs one per worker-pool lane.
    const double seal_one = chunk
        / (static_cast<double>(
               cpu_model_.cost(config_.algo, config_.chunk_bytes, 1))
           * 1e-3);
    const double seal_stage =
        config_.overlap == OverlapMode::Speculative
        ? seal_one * static_cast<double>(crypto_workers_.size())
        : seal_one;
    const double copy_stage = chunk
        / (static_cast<double>(
               stageCopyCost(config_.chunk_bytes, dir))
           * 1e-3);
    return std::min({seal_stage, copy_stage, link_gbps,
                     config_.gpu_crypto_gbps});
}

SimTime
SecureChannel::transferDuration(Bytes bytes, const pcie::PcieLink &link,
                                pcie::Direction dir) const
{
    if (bytes == 0)
        return 0;
    if (config_.tee_io) {
        return link.dmaDuration(
            bytes,
            link.config().effective_gbps * calib::kTeeIoEfficiency);
    }
    SimTime total = 0;
    Bytes remaining = bytes;
    while (remaining > 0) {
        const Bytes chunk =
            std::min<Bytes>(remaining, config_.chunk_bytes);
        remaining -= chunk;
        total += workerChunkCost(chunk, dir);
        total += link.dmaDuration(chunk);
        total += transferTime(chunk, config_.gpu_crypto_gbps);
    }
    return total;
}

Status
SecureChannel::transferFunctional(std::span<const std::uint8_t> src,
                                  std::span<std::uint8_t> dst)
{
    HCC_ASSERT(dst.size() >= src.size(),
               "functional transfer destination too small");

    obs::ProfileScope profile(obs_, "channel_functional");
    if (config_.crypto_workers > 1
        && src.size() > config_.chunk_bytes)
        return transferFunctionalParallel(src, dst);
    return transferFunctionalSequential(src, dst);
}

void
SecureChannel::stageFaults(std::vector<std::uint8_t> &stage)
{
    // Step c/d: the ciphertext sits in untrusted shared memory; a
    // malicious hypervisor may do anything to it here.  The injector
    // models that adversary: an injected tag mismatch flips a bit,
    // and the stage hook lets tests and campaigns observe or tamper
    // with the exact wire bytes.
    if (!fault_)
        return;
    if (fault_->shouldInject(fault::Site::ChannelTagMismatch))
        fault_->corrupt(stage);
    if (fault_->stageHook())
        fault_->stageHook()(stage);
}

Status
SecureChannel::transferChunk(std::span<const std::uint8_t> src,
                             std::span<std::uint8_t> dst,
                             std::size_t off,
                             const crypto::GcmIv &primary,
                             int first_attempt)
{
    for (int attempt = first_attempt;
         attempt <= fault::kMaxTransferAttempts; ++attempt) {
        // Step b: seal the chunk.  Retries re-seal under the
        // attempt-derived IV (never the failed one — that ciphertext
        // is torn down, never re-sent) without consuming further
        // sequence positions, so the IV stream advances identically
        // whether or not faults fired and on which functional path.
        const auto iv = ivForAttempt(primary, attempt);
        auto slot = pool_.acquire(0);
        auto &stage = pool_.storage(slot);
        // Exactly ciphertext || tag: the fault layer (corruption and
        // the stage hook) must see only live wire bytes, never a
        // stale slot tail.  Shrinking keeps the slot's capacity.
        stage.resize(src.size() + crypto::kGcmTagLen);
        std::uint8_t tag[crypto::kGcmTagLen];
        gcm_.seal(iv, {}, src,
                  std::span<std::uint8_t>(stage.data(), src.size()),
                  tag);
        std::copy(tag, tag + crypto::kGcmTagLen,
                  stage.begin()
                      + static_cast<std::ptrdiff_t>(src.size()));

        stageFaults(stage);

        // Step e: the far side authenticates and decrypts.
        const bool chunk_ok = gcm_.open(
            iv, {},
            std::span<const std::uint8_t>(stage.data(), src.size()),
            stage.data() + src.size(), dst);
        pool_.release(slot, 0);

        if (chunk_ok) {
            if (attempt > 1 && fault_
                && fault_->armed(fault::Site::ChannelTagMismatch))
                fault_->recordRecovery(
                    fault::Site::ChannelTagMismatch, 0);
            return Status();
        }
    }
    return errorf(ErrorCode::IntegrityError,
                  "chunk at offset %zu failed authentication after "
                  "%d attempts",
                  off, fault::kMaxTransferAttempts);
}

Status
SecureChannel::transferFunctionalSequential(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst)
{
    std::size_t off = 0;
    while (off < src.size()) {
        const std::size_t chunk = std::min<std::size_t>(
            config_.chunk_bytes, src.size() - off);
        const auto primary = iv_seq_.next();
        Status st = transferChunk(src.subspan(off, chunk),
                                  dst.subspan(off, chunk), off,
                                  primary, 1);
        if (!st.ok())
            return st;
        off += chunk;
    }
    return Status();
}

Status
SecureChannel::transferFunctionalParallel(
    std::span<const std::uint8_t> src, std::span<std::uint8_t> dst)
{
    // Chunk layout and IVs are fixed up front, in chunk order, so
    // the wire bytes are identical to the sequential path no matter
    // how the workers interleave.
    struct Chunk
    {
        std::size_t off = 0;
        std::size_t len = 0;
        crypto::GcmIv iv{};
    };
    std::vector<Chunk> chunks;
    for (std::size_t off = 0; off < src.size();) {
        const std::size_t len = std::min<std::size_t>(
            config_.chunk_bytes, src.size() - off);
        chunks.push_back({off, len, iv_seq_.next()});
        off += len;
    }

    const auto runParallel = [&](auto &&work) {
        const std::size_t nworkers = std::min<std::size_t>(
            static_cast<std::size_t>(config_.crypto_workers),
            chunks.size());
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> threads;
        threads.reserve(nworkers);
        for (std::size_t w = 0; w < nworkers; ++w) {
            threads.emplace_back([&] {
                for (std::size_t i = next.fetch_add(1);
                     i < chunks.size(); i = next.fetch_add(1))
                    work(i);
            });
        }
        for (auto &t : threads)
            t.join();
    };

    // Phase 1 (parallel): seal each chunk into its own staging
    // buffer as ciphertext || tag.  gcm_ is shared read-only; its
    // obs counters are atomic.
    std::vector<std::vector<std::uint8_t>> staging(chunks.size());
    runParallel([&](std::size_t i) {
        const Chunk &c = chunks[i];
        auto &buf = staging[i];
        buf.resize(c.len + crypto::kGcmTagLen);
        std::uint8_t tag[crypto::kGcmTagLen];
        gcm_.seal(c.iv, {}, src.subspan(c.off, c.len),
                  std::span<std::uint8_t>(buf.data(), c.len), tag);
        std::copy(tag, tag + crypto::kGcmTagLen,
                  buf.begin() + static_cast<std::ptrdiff_t>(c.len));
    });

    // Phase 2 (sequential, chunk order): stage through the bounce
    // pool and expose each ciphertext to the fault layer exactly as
    // the single-worker path does.
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        auto slot = pool_.acquire(0);
        auto &stage = pool_.storage(slot);
        stage.swap(staging[i]);
        stageFaults(stage);
        stage.swap(staging[i]);
        pool_.release(slot, 0);
    }

    // Phase 3 (parallel): authenticate and decrypt into disjoint
    // destination ranges.
    std::vector<std::uint8_t> chunk_ok(chunks.size(), 0);
    runParallel([&](std::size_t i) {
        const Chunk &c = chunks[i];
        const auto &buf = staging[i];
        chunk_ok[i] = gcm_.open(
                          c.iv, {},
                          std::span<const std::uint8_t>(buf.data(),
                                                        c.len),
                          buf.data() + c.len,
                          dst.subspan(c.off, c.len))
            ? 1
            : 0;
    });

    // Chunks that failed authentication retry through the sequential
    // per-chunk path (attempt-derived IVs off the chunk's original
    // draw, same bounce slots); the parallel phases above already
    // consumed attempt 1, so retries resume at attempt 2 — exactly
    // the IVs the sequential path would have used.
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        if (chunk_ok[i])
            continue;
        const Chunk &c = chunks[i];
        Status st = transferChunk(src.subspan(c.off, c.len),
                                  dst.subspan(c.off, c.len), c.off,
                                  c.iv, 2);
        if (!st.ok())
            return st;
    }
    return Status();
}

} // namespace hcc::tee
