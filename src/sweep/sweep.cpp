#include "sweep/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace hcc::sweep {

std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Shortest deterministic rendering of a scale factor. */
std::string
formatScale(double scale)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", scale);
    return buf;
}

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream iss(csv);
    while (std::getline(iss, item, ',')) {
        item = trim(item);
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

/**
 * Cell identity without the seed — the cross-seed fork-group key.
 * Mirrors RunCell::label() minus the ".s<seed>" component
 * (crypto_workers/tee_io are grid-wide constants).
 */
std::string
seedlessKey(const RunCell &cell)
{
    std::string out = cell.app;
    out += cell.cc ? ".cc" : ".base";
    if (cell.uvm)
        out += ".uvm";
    out += ".x" + formatScale(cell.scale);
    if (cell.overlap != tee::OverlapMode::None) {
        out += '.';
        out += tee::overlapModeName(cell.overlap);
    }
    return out;
}

/** Whether the fork engine can actually split this cell (the seed
 *  may then be deferred to a reseed-at-fork arm). */
bool
crossSeedEligible(const RunCell &cell)
{
    const workloads::Workload *w =
        workloads::WorkloadRegistry::instance().find(cell.app);
    return w != nullptr && w->forkable()
        && !(cell.uvm && !w->supportsUvm());
}

} // namespace

std::size_t
GridSpec::cellCount() const
{
    return apps.size() * cc_modes.size() * uvm_modes.size()
        * scales.size() * seeds.size() * overlaps.size();
}

std::string
RunCell::label() const
{
    std::string out = app;
    out += cc ? ".cc" : ".base";
    if (uvm)
        out += ".uvm";
    out += ".x" + formatScale(scale);
    out += ".s" + std::to_string(seed);
    // The serial tier is elided so pre-overlap labels stay stable.
    if (overlap != tee::OverlapMode::None) {
        out += '.';
        out += tee::overlapModeName(overlap);
    }
    return out;
}

std::size_t
SweepResult::failures() const
{
    std::size_t n = 0;
    for (const auto &c : cells)
        n += c.ok ? 0 : 1;
    return n;
}

std::vector<RunCell>
expandGrid(const GridSpec &grid)
{
    std::vector<RunCell> cells;
    cells.reserve(grid.cellCount());
    for (const auto &app : grid.apps) {
        for (bool cc : grid.cc_modes) {
            for (bool uvm : grid.uvm_modes) {
                for (double scale : grid.scales) {
                    for (std::uint64_t seed : grid.seeds) {
                        for (tee::OverlapMode overlap :
                             grid.overlaps) {
                            RunCell cell;
                            cell.index = cells.size();
                            cell.app = app;
                            cell.cc = cc;
                            cell.uvm = uvm;
                            cell.scale = scale;
                            cell.seed = seed;
                            cell.overlap = overlap;
                            cell.crypto_workers =
                                grid.crypto_workers;
                            cell.tee_io = grid.tee_io;
                            cells.push_back(std::move(cell));
                        }
                    }
                }
            }
        }
    }
    return cells;
}

SweepResult
runSweep(const GridSpec &grid, int jobs, obs::Registry *sweep_obs)
{
    const auto cells = expandGrid(grid);
    // Force the suite registration to finish on this thread before
    // workers look apps up (registration is also mutex-guarded, this
    // just keeps the first lookup off the parallel path).
    workloads::WorkloadRegistry::instance();

    SweepResult result;
    result.jobs = jobs < 1 ? 1 : jobs;
    result.cells.resize(cells.size());

    // Prefix-group the grid.  Cells of a forkable app that differ
    // only in their seed share one prefix (cross-seed sharing: the
    // prefix runs under a seed-independent identity seed and each
    // cell carries a reseed-at-fork arm); everything else groups by
    // full cell identity, so only exact duplicates share.  The same
    // grouping applies under --no-snapshot — the cold control must
    // replay the identical derivation for the byte-identity gate.
    const bool split_on =
        grid.fork_point.mode != snap::ForkPoint::Mode::None;
    std::vector<std::vector<std::size_t>> groups;
    {
        std::map<std::string, std::size_t> by_key;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const std::string key =
                split_on && crossSeedEligible(cells[i])
                    ? seedlessKey(cells[i])
                    : cells[i].label();
            const auto [it, fresh] =
                by_key.emplace(key, groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<snap::ForkGroupOutcome> outcomes(groups.size());
    result.pool = runIndexed(
        groups.size(), result.jobs, [&](std::size_t g) {
            const auto &members = groups[g];
            const RunCell &first = cells[members.front()];
            snap::ForkGroupSpec fork_group;
            fork_group.app = first.app;
            fork_group.sys.cc = first.cc;
            fork_group.sys.channel.crypto_workers =
                first.crypto_workers;
            fork_group.sys.channel.tee_io = first.tee_io;
            fork_group.sys.channel.overlap = first.overlap;
            fork_group.params.uvm = first.uvm;
            fork_group.params.scale = first.scale;
            fork_group.snapshot_budget_bytes =
                grid.snapshot_budget_bytes;
            // Sweep cells arm no faults: default ForkCell faults.
            fork_group.cells.resize(members.size());
            bool multi_seed = false;
            for (const std::size_t i : members)
                multi_seed |= cells[i].seed != first.seed;
            if (multi_seed) {
                // Cross-seed group: construct from the identity
                // seed; each cell's own seed enters via its reseed
                // arm at the fork point.
                const std::uint64_t ident = snap::identitySeed(
                    fork_group.app, fork_group.sys,
                    fork_group.params);
                fork_group.sys.seed = ident;
                fork_group.params.seed = ident;
                for (std::size_t j = 0; j < members.size(); ++j) {
                    snap::ForkArm arm;
                    arm.kind = snap::ForkArm::Kind::Reseed;
                    arm.seed = cells[members[j]].seed;
                    fork_group.cells[j].arms.push_back(arm);
                }
            } else {
                // Single-seed group (exact duplicates): construct
                // from the cell seed, exactly as before cross-seed
                // sharing existed.
                fork_group.sys.seed = first.seed;
                fork_group.params.seed = first.seed;
            }
            outcomes[g] = snap::runForkGroup(
                fork_group, grid.fork_point, grid.no_snapshot);
        });
    result.wall_us = elapsedUs(start);

    for (std::size_t g = 0; g < groups.size(); ++g) {
        result.snapshot_hits += outcomes[g].snapshot_hits;
        result.peak_resident_bytes =
            std::max(result.peak_resident_bytes,
                     outcomes[g].peak_resident_bytes);
        for (std::size_t j = 0; j < groups[g].size(); ++j) {
            const std::size_t i = groups[g][j];
            auto &cell_outcome = outcomes[g].cells[j];
            CellResult &out = result.cells[i];
            out.cell = cells[i];
            out.ok = cell_outcome.ok;
            out.error = std::move(cell_outcome.error);
            out.result = std::move(cell_outcome.result);
            out.wall_us = cell_outcome.wall_us;
        }
    }

    if (sweep_obs != nullptr) {
        // All updates happen here on the caller's thread, after the
        // pool has joined: gauges and distributions are not
        // thread-safe by design.
        sweep_obs->counter("sweep.cells").add(result.cells.size());
        sweep_obs->counter("sweep.failures").add(result.failures());
        auto &cell_wall =
            sweep_obs->distribution("host.sweep.cell_wall_us");
        for (const auto &c : result.cells)
            cell_wall.add(c.wall_us);
        sweep_obs->distribution("host.sweep.wall_us")
            .add(result.wall_us);
        sweep_obs->counter("host.sweep.pool.executed")
            .add(result.pool.executed);
        sweep_obs->counter("host.sweep.pool.steals")
            .add(result.pool.stolen);
        sweep_obs->gauge("host.sweep.jobs").set(result.jobs);
        sweep_obs->gauge("host.sweep.pool.utilization_pct")
            .set(static_cast<std::int64_t>(
                result.pool.utilization(result.wall_us) * 100.0));
        // Campaign throughput + fork-engine effectiveness.  host.*
        // wall-clock gauges, excluded from deterministic dumps.
        if (result.wall_us > 0.0) {
            sweep_obs->gauge("host.sweep.cells_per_sec")
                .set(static_cast<std::int64_t>(
                    static_cast<double>(result.cells.size())
                    / (result.wall_us / 1e6)));
        }
        sweep_obs->gauge("host.sweep.snapshot_hits")
            .set(static_cast<std::int64_t>(result.snapshot_hits));
        sweep_obs->gauge("host.sweep.snapshot_resident_bytes")
            .set(static_cast<std::int64_t>(
                result.peak_resident_bytes));
    }
    return result;
}

std::vector<bool>
parseModeList(const std::string &name)
{
    if (name == "on")
        return {true};
    if (name == "off")
        return {false};
    if (name == "both")
        return {false, true};
    fatal("bad mode '%s' (on|off|both)", name.c_str());
}

std::vector<std::string>
parseAppList(const std::string &csv)
{
    if (trim(csv) == "all")
        return workloads::evaluationApps();
    auto apps = splitCsv(csv);
    if (apps.empty())
        fatal("empty app list '%s'", csv.c_str());
    return apps;
}

std::vector<double>
parseScaleList(const std::string &csv)
{
    std::vector<double> out;
    for (const auto &item : splitCsv(csv)) {
        double v = 0.0;
        try {
            v = std::stod(item);
        } catch (...) {
            fatal("bad scale '%s'", item.c_str());
        }
        if (v <= 0.0)
            fatal("scale must be positive, got '%s'", item.c_str());
        out.push_back(v);
    }
    if (out.empty())
        fatal("empty scale list '%s'", csv.c_str());
    return out;
}

std::vector<tee::OverlapMode>
parseOverlapList(const std::string &csv)
{
    if (trim(csv) == "all")
        return {tee::OverlapMode::None, tee::OverlapMode::DoubleBuffer,
                tee::OverlapMode::Speculative};
    std::vector<tee::OverlapMode> out;
    for (const auto &item : splitCsv(csv)) {
        const auto mode = tee::parseOverlapMode(item);
        if (!mode)
            fatal("bad overlap mode '%s' "
                  "(none|double-buffer|speculative|all)",
                  item.c_str());
        out.push_back(*mode);
    }
    if (out.empty())
        fatal("empty overlap list '%s'", csv.c_str());
    return out;
}

std::vector<std::uint64_t>
parseSeedList(const std::string &csv)
{
    std::vector<std::uint64_t> out;
    for (const auto &item : splitCsv(csv)) {
        try {
            out.push_back(std::stoull(item));
        } catch (...) {
            fatal("bad seed '%s'", item.c_str());
        }
    }
    if (out.empty())
        fatal("empty seed list '%s'", csv.c_str());
    return out;
}

namespace {

/**
 * Throwing parse body: fatal() doubles as the parse-abort mechanism
 * so the shared list parsers (parseModeList, parseScaleList, ...)
 * need no error plumbing.  The public surface converts the throw to
 * a typed Status — callers never see the exception.
 */
GridSpec
parseGridSpecImpl(const std::string &text)
{
    GridSpec grid;
    bool have_apps = false;
    std::istringstream iss(text);
    std::string line;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("grid spec line %d: expected 'key = value', got "
                  "'%s'", lineno, line.c_str());
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key == "apps") {
            grid.apps = parseAppList(value);
            have_apps = true;
        } else if (key == "cc") {
            grid.cc_modes = parseModeList(value);
        } else if (key == "uvm") {
            grid.uvm_modes = parseModeList(value);
        } else if (key == "scales") {
            grid.scales = parseScaleList(value);
        } else if (key == "seeds") {
            grid.seeds = parseSeedList(value);
        } else if (key == "overlap") {
            grid.overlaps = parseOverlapList(value);
        } else if (key == "crypto-workers") {
            int v = 0;
            try {
                v = std::stoi(value);
            } catch (...) {
                fatal("grid spec line %d: bad crypto-workers '%s'",
                      lineno, value.c_str());
            }
            if (v < 1)
                fatal("grid spec line %d: crypto-workers must be "
                      ">= 1", lineno);
            grid.crypto_workers = v;
        } else if (key == "fork-point") {
            const auto fp = snap::parseForkPoint(value);
            if (!fp.ok())
                fatal("grid spec line %d: %s", lineno,
                      fp.status().message().c_str());
            grid.fork_point = *fp;
        } else if (key == "snapshot") {
            if (value == "on")
                grid.no_snapshot = false;
            else if (value == "off")
                grid.no_snapshot = true;
            else
                fatal("grid spec line %d: snapshot must be on|off",
                      lineno);
        } else if (key == "snapshot-budget") {
            long long v = -1;
            try {
                v = std::stoll(value);
            } catch (...) {
                v = -1;
            }
            if (v < 0)
                fatal("grid spec line %d: snapshot-budget must be a "
                      "MiB count >= 0 (0 = unlimited), got '%s'",
                      lineno, value.c_str());
            grid.snapshot_budget_bytes =
                static_cast<std::size_t>(v) << 20;
        } else if (key == "tee-io") {
            if (value == "on")
                grid.tee_io = true;
            else if (value == "off")
                grid.tee_io = false;
            else
                fatal("grid spec line %d: tee-io must be on|off",
                      lineno);
        } else {
            fatal("grid spec line %d: unknown key '%s'", lineno,
                  key.c_str());
        }
    }
    if (!have_apps)
        fatal("grid spec is missing the 'apps' key");
    return grid;
}

} // namespace

Result<GridSpec>
parseGridSpec(const std::string &text)
{
    try {
        return parseGridSpecImpl(text);
    } catch (const FatalError &e) {
        return errorf(ErrorCode::ParseError, "%s", e.what());
    }
}

Result<GridSpec>
loadGridFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return errorf(ErrorCode::IoError,
                      "cannot open grid spec file '%s'", path.c_str());
    std::ostringstream oss;
    oss << in.rdbuf();
    if (in.bad())
        return errorf(ErrorCode::IoError,
                      "failed reading grid spec file '%s'",
                      path.c_str());
    return parseGridSpec(oss.str());
}

void
writeCellsCsv(const SweepResult &result, std::ostream &os)
{
    os << "index,label,app,cc,uvm,scale,seed,status,end_to_end_ps,"
          "launches,kernels,sum_klo_ps,sum_lqt_ps,sum_kqt_ps,"
          "sum_ket_ps,copy_h2d_ps,copy_d2h_ps,copy_d2d_ps,"
          "tdx_hypercalls,bottleneck,critical_path_ps,error\n";
    for (const auto &c : result.cells) {
        const auto &m = c.result.metrics;
        os << c.cell.index << ',' << csvField(c.cell.label()) << ','
           << csvField(c.cell.app) << ',' << (c.cell.cc ? 1 : 0)
           << ',' << (c.cell.uvm ? 1 : 0) << ','
           << formatScale(c.cell.scale) << ',' << c.cell.seed << ','
           << (c.ok ? "ok" : "failed") << ',';
        if (c.ok) {
            os << c.result.end_to_end << ',' << m.launches << ','
               << m.kernels << ',' << m.sumKlo() << ','
               << m.sumLqt() << ',' << m.sumKqt() << ','
               << m.sumKet() << ',' << m.copy_h2d << ','
               << m.copy_d2h << ',' << m.copy_d2d << ','
               << c.result.tdx.hypercalls << ','
               << trace::bottleneckName(c.result.critical.bottleneck)
               << ',' << c.result.critical.on_path_ps << ',';
        } else {
            os << ",,,,,,,,,,,,";
        }
        os << csvField(c.error) << '\n';
    }
}

void
writeCellsJson(const SweepResult &result, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    for (const auto &c : result.cells) {
        os << (first ? "" : ",\n");
        first = false;
        os << "  {\"index\": " << c.cell.index << ", \"label\": \""
           << jsonEscape(c.cell.label()) << "\", \"app\": \""
           << jsonEscape(c.cell.app) << "\", \"cc\": "
           << (c.cell.cc ? "true" : "false") << ", \"uvm\": "
           << (c.cell.uvm ? "true" : "false") << ", \"scale\": "
           << formatScale(c.cell.scale) << ", \"seed\": "
           << c.cell.seed << ", \"ok\": "
           << (c.ok ? "true" : "false");
        if (c.ok) {
            const auto &m = c.result.metrics;
            os << ", \"end_to_end_ps\": " << c.result.end_to_end
               << ", \"launches\": " << m.launches
               << ", \"kernels\": " << m.kernels
               << ", \"sum_klo_ps\": " << m.sumKlo()
               << ", \"sum_lqt_ps\": " << m.sumLqt()
               << ", \"sum_kqt_ps\": " << m.sumKqt()
               << ", \"sum_ket_ps\": " << m.sumKet()
               << ", \"copy_h2d_ps\": " << m.copy_h2d
               << ", \"copy_d2h_ps\": " << m.copy_d2h
               << ", \"copy_d2d_ps\": " << m.copy_d2d
               << ", \"tdx_hypercalls\": "
               << c.result.tdx.hypercalls
               << ", \"bottleneck\": \""
               << trace::bottleneckName(c.result.critical.bottleneck)
               << "\", \"critical_path_ps\": "
               << c.result.critical.on_path_ps;
        } else {
            os << ", \"error\": \"" << jsonEscape(c.error) << "\"";
        }
        os << "}";
    }
    os << "\n]\n";
}

void
writeMergedStats(const SweepResult &result, std::ostream &os)
{
    obs::StatsSections sections;
    sections.reserve(result.cells.size());
    for (const auto &c : result.cells) {
        if (!c.ok)
            continue;
        sections.emplace_back("cell" + std::to_string(c.cell.index)
                                  + "." + c.cell.label() + ".",
                              c.result.stats.get());
    }
    obs::writeStatsJson(os, sections, /*include_host=*/false);
}

} // namespace hcc::sweep
