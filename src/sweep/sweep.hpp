/**
 * @file
 * Parallel sweep engine: execute a declarative run-grid (app list x
 * CC modes x UVM modes x scales x seeds) with one fully isolated
 * simulation per grid cell on a work-stealing thread pool, and merge
 * the results into deterministic, input-order output.
 *
 * Every figure in the paper is such a grid, and every cell is an
 * independent simulation: per-cell rt::Context, obs::Registry, RNG
 * and tracer, no shared mutable state.  That isolation is what makes
 * the merged CSV / stats JSON byte-identical regardless of the
 * worker count — scheduling order can change, results cannot.
 *
 * A cell that throws hcc::FatalError (unknown app, no UVM variant,
 * bad spec) fails that cell alone: the error is captured in its
 * CellResult and the rest of the grid keeps running.
 */

#ifndef HCC_SWEEP_SWEEP_HPP
#define HCC_SWEEP_SWEEP_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/stats_io.hpp"
#include "snap/fork.hpp"
#include "tee/secure_channel.hpp"
#include "workloads/workload.hpp"

namespace hcc::sweep {

/**
 * Declarative run-grid.  Cells are expanded in input order: apps
 * (outer) x cc_modes x uvm_modes x scales x seeds x overlaps
 * (inner); that order is the merge order of every output.
 */
struct GridSpec
{
    /** Workload names; expanded in the given order. */
    std::vector<std::string> apps;
    /** CC modes to run each app under. */
    std::vector<bool> cc_modes = {false, true};
    /** UVM modes to run each app under. */
    std::vector<bool> uvm_modes = {false};
    /** Problem-size multipliers. */
    std::vector<double> scales = {1.0};
    /** RNG seeds. */
    std::vector<std::uint64_t> seeds = {42};
    /** Channel overlap tiers to run each cell under. */
    std::vector<tee::OverlapMode> overlaps = {tee::OverlapMode::None};
    /** Parallel encryption workers in the CC transfer path. */
    int crypto_workers = 1;
    /** Model the hypothetical TEE-IO hardware path. */
    bool tee_io = false;
    /**
     * Prefix/suffix cut for the fork engine (snap/fork.hpp).  Cells
     * of a forkable app that differ only in their seed share one
     * prefix: the group simulates it once under a seed-independent
     * identity seed and each cell reseeds to its own seed at the
     * fork point (cross-seed prefix sharing); chained fork points
     * ("auto/0.95") deepen the share into a snapshot tree.  Every
     * other axis changes the schedule from the first event, so those
     * cells group only with exact duplicates, as before.  Sweep
     * cells arm no faults, so fork and cold-split produce identical
     * output; `none` disables the split entirely (and restores the
     * pre-fork per-seed derivation).
     */
    snap::ForkPoint fork_point = {snap::ForkPoint::Mode::Auto, 0.0};
    /** Run duplicate cells cold instead of snapshot-forking them. */
    bool no_snapshot = false;
    /**
     * Ceiling on resident in-memory snapshot bytes per fork group
     * (0 = unlimited); over it the engine LRU-evicts interior tree
     * snapshots and deterministically rebuilds them on demand.
     */
    std::size_t snapshot_budget_bytes =
        snap::kDefaultSnapshotBudgetBytes;

    /** Number of cells the grid expands to. */
    std::size_t cellCount() const;
};

/** One expanded grid cell (a single simulation to run). */
struct RunCell
{
    /** Input-order position in the expanded grid. */
    std::size_t index = 0;
    std::string app;
    bool cc = false;
    bool uvm = false;
    double scale = 1.0;
    std::uint64_t seed = 42;
    tee::OverlapMode overlap = tee::OverlapMode::None;
    int crypto_workers = 1;
    bool tee_io = false;

    /** Stable human/machine id, e.g. "2mm.cc.uvm.x2.s7"; an overlap
     *  tier other than `none` appends its name, e.g.
     *  "2mm.cc.x1.s42.speculative". */
    std::string label() const;
};

/** Outcome of one cell. */
struct CellResult
{
    RunCell cell;
    /** False when the run threw FatalError. */
    bool ok = false;
    /** The FatalError message when !ok. */
    std::string error;
    /** The run's full result (trace, metrics, stats); valid iff ok. */
    workloads::WorkloadResult result;
    /** Host wall-clock the cell took, us (not deterministic). */
    double wall_us = 0.0;
};

/** Outcome of a whole sweep, cells in input order. */
struct SweepResult
{
    std::vector<CellResult> cells;
    /** Worker threads the sweep ran with. */
    int jobs = 1;
    /** Host wall-clock of the whole sweep, us. */
    double wall_us = 0.0;
    /** Pool execution counters (steals, busy time, ...). */
    ThreadPool::Stats pool;
    /** Cells replayed from an in-memory snapshot: every cell of a
     *  duplicate-identity group (the prefix runs once per group and
     *  all its cells, including the first, restore + replay). */
    std::size_t snapshot_hits = 0;
    /** High-water mark of resident snapshot bytes over all groups
     *  (also published as host.sweep.snapshot_resident_bytes). */
    std::size_t peak_resident_bytes = 0;

    std::size_t failures() const;
    bool allOk() const { return failures() == 0; }
};

/** Expand @p grid into cells in deterministic input order. */
std::vector<RunCell> expandGrid(const GridSpec &grid);

/**
 * Run every cell of @p grid on @p jobs workers (<= 1 = inline).
 * Per-cell wall-clock and pool utilization are published into
 * @p sweep_obs (may be null) under "sweep.*" (deterministic
 * counters) and "host.sweep.*" (wall-clock, excluded from
 * deterministic dumps).
 */
SweepResult runSweep(const GridSpec &grid, int jobs,
                     obs::Registry *sweep_obs = nullptr);

/**
 * Parse a sweep grid spec.  Line-oriented `key = value` pairs, '#'
 * comments; keys: apps (comma list or "all"), cc (on|off|both),
 * uvm (on|off|both), scales (comma list), seeds (comma list),
 * overlap (comma list of none|double-buffer|speculative),
 * crypto-workers (int), tee-io (on|off), fork-point
 * (none|auto|fraction, optionally '/'-chained), snapshot (on|off),
 * snapshot-budget (resident snapshot ceiling in MiB, 0 = unlimited).
 * @return the grid, or a ParseError status with a line-numbered
 *         message on unknown keys or bad values.
 */
Result<GridSpec> parseGridSpec(const std::string &text);

/** Parse "on"/"off"/"both" into a mode list.  @throws FatalError. */
std::vector<bool> parseModeList(const std::string &name);

/**
 * Parse a comma-separated app list; "all" expands to the paper's
 * evaluation app list.  @throws FatalError on an empty list.
 */
std::vector<std::string> parseAppList(const std::string &csv);

/** Parse a comma list of positive scales.  @throws FatalError. */
std::vector<double> parseScaleList(const std::string &csv);

/** Parse a comma list of seeds.  @throws FatalError. */
std::vector<std::uint64_t> parseSeedList(const std::string &csv);

/**
 * Parse a comma list of overlap tiers
 * (none|double-buffer|speculative), or "all" for every tier in
 * enum order.  @throws FatalError.
 */
std::vector<tee::OverlapMode> parseOverlapList(const std::string &csv);

/** Load and parse a grid spec file (IoError when unreadable). */
Result<GridSpec> loadGridFile(const std::string &path);

/** RFC-4180 CSV field quoting (shared by the sweep/serve writers). */
std::string csvField(const std::string &field);

/** JSON string escaping for labels and error messages (shared by the
 *  sweep/serve writers). */
std::string jsonEscape(const std::string &s);

/**
 * Deterministic per-cell CSV (RFC-4180 quoting): one row per cell in
 * input order, simulated metrics only — byte-identical across
 * worker counts.
 */
void writeCellsCsv(const SweepResult &result, std::ostream &os);

/** Deterministic per-cell JSON array, same guarantees as the CSV. */
void writeCellsJson(const SweepResult &result, std::ostream &os);

/**
 * Merged stats dump: every successful cell's registry as a section
 * prefixed "cell<index>.<label>.", readable by `hccsim stats-diff`.
 * Deterministic and byte-identical across worker counts (host.*
 * wall-clock stats are excluded by the writer).
 */
void writeMergedStats(const SweepResult &result, std::ostream &os);

} // namespace hcc::sweep

#endif // HCC_SWEEP_SWEEP_HPP
