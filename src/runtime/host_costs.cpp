#include "runtime/host_costs.hpp"

#include <algorithm>
#include <cmath>

#include "common/calibration.hpp"

namespace hcc::rt {

namespace {

using namespace calib;

double
mib(Bytes bytes)
{
    return size::toMiB(bytes);
}

SimTime
perMib(SimTime per_mib_cost, Bytes bytes)
{
    return static_cast<SimTime>(static_cast<double>(per_mib_cost)
                                * mib(bytes));
}

} // namespace

SimTime
deviceAllocCost(Bytes bytes, tee::TdxModule &tdx)
{
    SimTime t = kDeviceAllocFixedBase + perMib(kDeviceAllocPerMiB,
                                               bytes);
    t += tdx.guestHostRoundTrips(kDeviceAllocVmExits);
    // Under CC the shared pushbuffer/fence pages touched by the
    // allocation path are converted private<->shared.
    t += tdx.convertPages(tdx.ccEnabled() ? kDeviceAllocCcSharedBytes
                                          : 0);
    return t;
}

SimTime
hostAllocCost(Bytes bytes, tee::TdxModule &tdx)
{
    SimTime t = kHostAllocFixedBase + perMib(kHostAllocPerMiB, bytes);
    t += tdx.guestHostRoundTrips(kHostAllocVmExits);
    if (tdx.ccEnabled()) {
        // Pinned memory is re-implemented over managed mappings
        // (Observation 1): extra per-page registration metadata.
        t += perMib(kHostAllocCcPerMiB, bytes);
    }
    return t;
}

SimTime
managedAllocCost(Bytes bytes, tee::TdxModule &tdx)
{
    SimTime t = kManagedAllocFixedBase + perMib(kManagedAllocPerMiB,
                                                bytes);
    t += tdx.guestHostRoundTrips(kManagedAllocVmExits);
    if (tdx.ccEnabled())
        t += kManagedAllocCcExtra;
    return t;
}

SimTime
freeCost(Bytes bytes, tee::TdxModule &tdx)
{
    SimTime t = kFreeFixedBase + perMib(kFreePerMiB, bytes);
    t += tdx.guestHostRoundTrips(kFreeVmExits);
    if (tdx.ccEnabled())
        t += kFreeCcFixedExtra;
    return t;
}

SimTime
managedFreeCost(Bytes bytes, tee::TdxModule &tdx)
{
    SimTime t =
        kManagedFreeFixedBase + perMib(kManagedFreePerMiB, bytes);
    t += tdx.guestHostRoundTrips(kManagedFreeVmExits);
    if (tdx.ccEnabled()) {
        // Resident encrypted pages must be converted back to private
        // before release (drives the paper's 18.20x CC-UVM free).
        t += perMib(kManagedFreeCcPerMiB, bytes);
    }
    return t;
}

SimTime
launchOverhead(int prior_launches, int launch_index,
               Bytes module_bytes, tee::TdxModule &tdx, Rng &rng)
{
    const bool cc = tdx.ccEnabled();
    const double sigma = cc ? kLaunchSigmaCc : kLaunchSigmaBase;
    SimTime t = static_cast<SimTime>(rng.lognormal(
        static_cast<double>(kLaunchMedianBase), sigma));
    if (cc)
        t += kLaunchCcExtra;

    // Write-combined doorbells: every Nth launch flushes.
    if (launch_index % kLaunchDoorbellBatch == 0)
        t += tdx.mmioDoorbell();

    // First launches of a kernel upload its module; under CC the
    // image crosses the encrypted path with a dma_direct_alloc and
    // hypercalls on the way (Fig. 8).  Decays over the window as
    // driver caches warm.
    if (prior_launches < kFirstLaunchWindow) {
        const Bytes module =
            module_bytes > 0 ? module_bytes : kDefaultModuleBytes;
        const SimTime extra = kModuleSetupCost
            + transferTime(module, cc ? kModuleUploadCcGBs
                                      : kModuleUploadBaseGBs);
        t += static_cast<SimTime>(
            static_cast<double>(extra)
            * std::pow(kFirstLaunchDecay, prior_launches));
        if (cc && prior_launches == 0) {
            // The very first launch carves a staging bounce buffer
            // (dma_direct_alloc, whose pages are converted inside);
            // large modules additionally convert an upload staging
            // window (set_memory_decrypted) — the Fig. 8 frames.
            // Warm launches reuse both.
            t += tdx.dmaAlloc(size::kib(4.0));
            if (module > size::kib(256.0)) {
                t += tdx.convertPages(
                    std::min(module, kModuleConvertCap));
            }
        }
    }
    return t;
}

SimTime
interLaunchGap(bool cc, Rng &rng)
{
    const double median = static_cast<double>(kInterLaunchGapBase)
        * (cc ? kCcDispatchFactor : 1.0);
    return static_cast<SimTime>(
        rng.lognormal(median, kDispatchGapSigma));
}

} // namespace hcc::rt
