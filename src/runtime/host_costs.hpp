/**
 * @file
 * Host-side driver cost model: what the CPU pays inside each runtime
 * API call, before any device work happens.  Allocation and free
 * costs charge their guest<->host round trips to the TdxModule, so a
 * Fig. 8-style breakdown of where CC time goes falls out of the TDX
 * counters.
 */

#ifndef HCC_RUNTIME_HOST_COSTS_HPP
#define HCC_RUNTIME_HOST_COSTS_HPP

#include "common/rng.hpp"
#include "common/units.hpp"
#include "tee/tdx.hpp"

namespace hcc::rt {

/** Cost of cudaMalloc(bytes). */
SimTime deviceAllocCost(Bytes bytes, tee::TdxModule &tdx);

/** Cost of cudaMallocHost(bytes) (pinned allocation). */
SimTime hostAllocCost(Bytes bytes, tee::TdxModule &tdx);

/** Cost of cudaMallocManaged(bytes). */
SimTime managedAllocCost(Bytes bytes, tee::TdxModule &tdx);

/** Cost of cudaFree on a device or pinned allocation. */
SimTime freeCost(Bytes bytes, tee::TdxModule &tdx);

/** Cost of cudaFree on a managed allocation. */
SimTime managedFreeCost(Bytes bytes, tee::TdxModule &tdx);

/**
 * Host-side cost of one cudaLaunchKernel call (the KLO).
 * @param prior_launches how many times this kernel symbol launched
 *        before (first launches pay module-upload extras that are
 *        strongly amplified under CC — Fig. 12a / dwt2d's 5.31x).
 * @param launch_index global launch ordinal (doorbell batching).
 * @param module_bytes kernel module size (0 = calibrated default);
 *        uploaded through the encrypted path on CC first launches.
 */
SimTime launchOverhead(int prior_launches, int launch_index,
                       Bytes module_bytes, tee::TdxModule &tdx,
                       Rng &rng);

/** Host-side dispatch gap between consecutive launches. */
SimTime interLaunchGap(bool cc, Rng &rng);

} // namespace hcc::rt

#endif // HCC_RUNTIME_HOST_COSTS_HPP
