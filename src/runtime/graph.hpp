/**
 * @file
 * CUDA-graph-style launch fusion (Sec. VII-A).
 *
 * A graph captures a sequence of kernel nodes once, pays an
 * instantiation cost, and then replays the whole sequence with a
 * single host-side launch operation — trading instantiation time for
 * per-kernel KLO/LQT, the trade-off the fusion ablation explores.
 */

#ifndef HCC_RUNTIME_GRAPH_HPP
#define HCC_RUNTIME_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gpu/kernel.hpp"

namespace hcc::rt {

/**
 * An instantiated executable graph.  Create via
 * Context::instantiateGraph(); launch via Context::launchGraph().
 */
class GraphExec
{
  public:
    GraphExec() = default;

    const std::vector<gpu::KernelDesc> &nodes() const { return nodes_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    const std::string &name() const { return name_; }
    std::uint64_t id() const { return id_; }
    /** Instantiation cost that was charged at creation. */
    SimTime instantiateCost() const { return instantiate_cost_; }

  private:
    friend class Context;

    std::uint64_t id_ = 0;
    std::string name_;
    std::vector<gpu::KernelDesc> nodes_;
    SimTime instantiate_cost_ = 0;
};

} // namespace hcc::rt

#endif // HCC_RUNTIME_GRAPH_HPP
