#include "runtime/graph.hpp"

// GraphExec is a passive container; all behaviour lives in Context.
// This translation unit exists to anchor the class's vtable-free
// definition and keep the build layout uniform.

namespace hcc::rt {

} // namespace hcc::rt
