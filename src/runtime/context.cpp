#include "runtime/context.hpp"

#include <algorithm>

#include "common/calibration.hpp"
#include "common/log.hpp"
#include "runtime/host_costs.hpp"
#include "snap/archive.hpp"
#include "snap/snap.hpp"
#include "tee/attestation.hpp"

namespace hcc::rt {

const char *
memSpaceName(MemSpace space)
{
    switch (space) {
      case MemSpace::HostPageable: return "host-pageable";
      case MemSpace::HostPinned: return "host-pinned";
      case MemSpace::Device: return "device";
      case MemSpace::Managed: return "managed";
    }
    return "?";
}

namespace {

gpu::GpuConfig
deriveGpuConfig(const SystemConfig &config)
{
    gpu::GpuConfig g = config.gpu;
    g.cc_mode = config.cc;
    g.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
    return g;
}

} // namespace

Context::Context(const SystemConfig &config)
    : config_(config),
      obs_(std::make_shared<obs::Registry>()),
      fault_(std::make_unique<fault::Injector>(config.faults,
                                               config.seed,
                                               obs_.get())),
      tdx_(config.cc, obs_.get(), fault_.get()),
      link_(config.link, obs_.get(), fault_.get()),
      gpu_(deriveGpuConfig(config), obs_.get(), fault_.get()),
      rng_(config.seed)
{
    fault_->attachTracer(&tracer_);
    obs_api_allocs_ = &obs_->counter("runtime.api.allocs");
    obs_api_frees_ = &obs_->counter("runtime.api.frees");
    obs_api_memcpys_ = &obs_->counter("runtime.api.memcpys");
    obs_api_launches_ = &obs_->counter("runtime.api.launches");
    obs_api_syncs_ = &obs_->counter("runtime.api.syncs");
    obs_launch_queue_depth_ =
        &obs_->gauge("runtime.launch_queue.depth");

    // Fixed API event names, interned once so the per-call hot path
    // never touches a string.
    labels_.malloc_device = tracer_.intern("cudaMalloc");
    labels_.malloc_host = tracer_.intern("cudaMallocHost");
    labels_.malloc_managed = tracer_.intern("cudaMallocManaged");
    labels_.free_buffer = tracer_.intern("cudaFree");
    labels_.memcpy_plain = tracer_.intern("memcpy");
    labels_.memcpy_managed = tracer_.intern("memcpy-managed");
    labels_.mem_prefetch = tracer_.intern("memPrefetch");
    labels_.memset_device = tracer_.intern("cudaMemset");
    labels_.event_sync = tracer_.intern("cudaEventSynchronize");
    labels_.stream_sync = tracer_.intern("cudaStreamSynchronize");
    labels_.device_sync = tracer_.intern("cudaDeviceSynchronize");

    streams_.emplace_back();  // stream 0 = default stream
    if (config_.cc) {
        // Binding a CC-mode GPU to the TD: SPDM attestation and
        // session-key establishment, plus generating and verifying
        // the platform quote the tenant demands before trusting the
        // session (Sec. III).  A failed handshake (spdm.handshake
        // fault site) is recovered by re-attesting from scratch —
        // every attempt pays the full handshake cost.
        for (int attempt = 1;; ++attempt) {
            auto session =
                tee::SpdmSession::establish(config_.seed, fault_.get());
            host_now_ += tee::SpdmSession::kHandshakeCost;
            if (session.ok()) {
                channel_ = std::make_unique<tee::SecureChannel>(
                    config_.channel, session.value(), obs_.get(),
                    fault_.get());
                if (attempt > 1)
                    fault_->recordRecoverySpan(
                        fault::Site::SpdmHandshake, 0,
                        (attempt - 1)
                            * tee::SpdmSession::kHandshakeCost);
                break;
            }
            if (attempt >= fault::kMaxHandshakeAttempts)
                fatal("SPDM session setup failed after %d attempts: "
                      "%s",
                      attempt, session.status().message().c_str());
        }
        host_now_ += tee::AttestationService::kQuoteGenCost;
        host_now_ += tee::AttestationService::kQuoteVerifyCost;
    }
}

// -------------------------------------------------------- snapshots

void
Context::captureSnapshot(snap::Snapshot &out)
{
    out.meta.cc = config_.cc;
    out.meta.seed = config_.seed;
    out.meta.sim_time = host_now_;
    const auto save = [&out](const char *name, auto &&fill) {
        snap::Saver ar;
        fill(ar);
        out.add(name) = ar.take();
    };
    save("runtime",
         [this](snap::Saver &ar) { snapRuntimeState(ar); });
    save("obs", [this](snap::Saver &ar) { obs_->snapState(ar); });
    save("fault", [this](snap::Saver &ar) { fault_->snapState(ar); });
    save("tdx", [this](snap::Saver &ar) { tdx_.snapState(ar); });
    save("pcie", [this](snap::Saver &ar) { link_.snapState(ar); });
    if (channel_)
        save("channel",
             [this](snap::Saver &ar) { channel_->snapState(ar); });
    save("gpu", [this](snap::Saver &ar) { gpu_.snapState(ar); });
    save("trace", [this](snap::Saver &ar) { tracer_.snapState(ar); });
    // Arm the truncation fast path for restores of *this* capture on
    // *this* Context.  Earlier captures stay armed too — their
    // events are still a prefix of the append-only tracer — so a
    // snapshot-tree DFS can bounce between ancestor captures without
    // ever replaying trace bytes.
    out.origin = this;
    out.origin_token = ++snap_token_seq_;
    snap_marks_.emplace_back(out.origin_token, tracer_.mark());
}

void
Context::restoreSnapshot(const snap::Snapshot &snap)
{
    if (snap.meta.cc != config_.cc)
        fatal("snapshot mode (%s) does not match this context (%s)",
              snap.meta.cc ? "cc" : "base",
              config_.cc ? "cc" : "base");
    const auto load = [&snap](const char *name, auto &&fill) {
        const auto *sec = snap.find(name);
        if (!sec)
            fatal("snapshot is missing section '%s'", name);
        snap::Loader ar(sec->bytes);
        fill(ar);
        if (!ar.exhausted())
            fatal("snapshot section '%s' has %zu trailing bytes",
                  name, sec->bytes.size() - ar.consumed());
    };
    load("runtime",
         [this](snap::Loader &ar) { snapRuntimeState(ar); });
    load("obs", [this](snap::Loader &ar) { obs_->snapState(ar); });
    load("fault",
         [this](snap::Loader &ar) { fault_->snapState(ar); });
    load("tdx", [this](snap::Loader &ar) { tdx_.snapState(ar); });
    load("pcie", [this](snap::Loader &ar) { link_.snapState(ar); });
    if (channel_)
        load("channel",
             [this](snap::Loader &ar) { channel_->snapState(ar); });
    load("gpu", [this](snap::Loader &ar) { gpu_.snapState(ar); });
    bool truncated = false;
    if (snap.origin == this && snap.origin_token != 0) {
        for (std::size_t i = 0; i < snap_marks_.size(); ++i) {
            if (snap_marks_[i].first != snap.origin_token)
                continue;
            // This capture's events are still an unchanged prefix of
            // the append-only tracer (recording only appends, and no
            // foreign snapshot has been restored since): rewind by
            // truncation.  Deeper captures' marks stop being
            // prefixes the moment new events land past this one —
            // drop them now.
            tracer_.truncateTo(snap_marks_[i].second);
            snap_marks_.resize(i + 1);
            truncated = true;
            break;
        }
    }
    if (!truncated) {
        load("trace",
             [this](snap::Loader &ar) { tracer_.snapState(ar); });
        // The byte load rewrote the pages; no live capture's mark
        // describes a prefix of what's in the tracer any more.
        snap_marks_.clear();
    }
}

void
Context::reseedAtFork(std::uint64_t seed)
{
    config_.seed = seed;
    // Mirror construction-time derivation exactly (see the Context
    // constructor and deriveGpuConfig): each component's generator
    // lands on the state it would hold freshly seeded with `seed`.
    rng_ = Rng(seed);
    gpu_.reseedAtFork(seed ^ 0x9e3779b97f4a7c15ULL);
    fault_->arm(config_.faults, seed);
}

Context::StreamState &
Context::streamState(const Stream &stream)
{
    const auto idx = static_cast<std::size_t>(stream.id());
    if (idx >= streams_.size())
        fatal("unknown stream %d", stream.id());
    return streams_[idx];
}

gpu::TransferContext
Context::transferContext()
{
    return gpu::TransferContext{link_, tdx_, channel_.get()};
}

gpu::HostMemKind
Context::hostKindOf(MemSpace space) const
{
    switch (space) {
      case MemSpace::HostPageable: return gpu::HostMemKind::Pageable;
      case MemSpace::HostPinned: return gpu::HostMemKind::Pinned;
      case MemSpace::Managed: return gpu::HostMemKind::Managed;
      case MemSpace::Device: break;
    }
    panic("device space has no host memory kind");
}

// ----------------------------------------------------------- memory

Buffer
Context::mallocDevice(Bytes bytes)
{
    obs_api_allocs_->add(1);
    const SimTime start = host_now_;
    host_now_ += deviceAllocCost(bytes, tdx_);
    Buffer buf{next_buffer_id_++, MemSpace::Device, bytes, 0};
    allocs_[buf.id] = {buf.space, bytes, 0};
    tracer_.record({trace::EventKind::MallocDevice,
                    labels_.malloc_device, start, host_now_, -1, 0,
                    bytes, 0, false});
    return buf;
}

Buffer
Context::mallocHost(Bytes bytes)
{
    obs_api_allocs_->add(1);
    const SimTime start = host_now_;
    host_now_ += hostAllocCost(bytes, tdx_);
    Buffer buf{next_buffer_id_++, MemSpace::HostPinned, bytes, 0};
    allocs_[buf.id] = {buf.space, bytes, 0};
    tracer_.record({trace::EventKind::MallocHost,
                    labels_.malloc_host, start, host_now_, -1, 0,
                    bytes, 0, false});
    return buf;
}

Buffer
Context::mallocManaged(Bytes bytes)
{
    obs_api_allocs_->add(1);
    const SimTime start = host_now_;
    host_now_ += managedAllocCost(bytes, tdx_);
    const std::uint64_t handle = gpu_.uvm().createAllocation(bytes);
    Buffer buf{next_buffer_id_++, MemSpace::Managed, bytes, handle};
    allocs_[buf.id] = {buf.space, bytes, handle};
    tracer_.record({trace::EventKind::MallocManaged,
                    labels_.malloc_managed, start, host_now_, -1, 0,
                    bytes, 0, false});
    return buf;
}

Buffer
Context::hostPageable(Bytes bytes)
{
    // Plain malloc: no driver involvement, no trace event.
    Buffer buf{next_buffer_id_++, MemSpace::HostPageable, bytes, 0};
    allocs_[buf.id] = {buf.space, bytes, 0};
    return buf;
}

void
Context::free(Buffer &buffer)
{
    if (!buffer.valid())
        fatal("freeing an invalid buffer");
    const auto it = allocs_.find(buffer.id);
    if (it == allocs_.end())
        fatal("double free or foreign buffer %llu",
              static_cast<unsigned long long>(buffer.id));
    const AllocInfo info = it->second;
    allocs_.erase(it);
    obs_api_frees_->add(1);

    if (info.space == MemSpace::HostPageable) {
        buffer.id = 0;  // plain free, no driver cost
        return;
    }
    const SimTime start = host_now_;
    if (info.space == MemSpace::Managed) {
        host_now_ += managedFreeCost(info.bytes, tdx_);
        gpu_.uvm().freeAllocation(info.uvm_handle);
    } else {
        host_now_ += freeCost(info.bytes, tdx_);
    }
    tracer_.record({trace::EventKind::Free, labels_.free_buffer,
                    start, host_now_, -1, 0, info.bytes, 0, false});
    buffer.id = 0;
}

void
Context::cpuTouchManaged(const Buffer &buffer)
{
    if (buffer.space != MemSpace::Managed)
        fatal("cpuTouchManaged on a %s buffer",
              memSpaceName(buffer.space));
    gpu_.uvm().invalidateDeviceResidency(buffer.uvm_handle);
}

// -------------------------------------------------------- transfers

void
Context::memcpyImpl(const Buffer &dst, const Buffer &src, Bytes bytes,
                    StreamState *async_stream)
{
    if (!dst.valid() || !src.valid())
        fatal("memcpy with an invalid buffer");
    if (bytes > dst.bytes || bytes > src.bytes) {
        fatal("memcpy of %llu bytes exceeds a buffer "
              "(dst %llu, src %llu)",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(dst.bytes),
              static_cast<unsigned long long>(src.bytes));
    }

    obs_api_memcpys_->add(1);
    const bool dst_dev = dst.space == MemSpace::Device;
    const bool src_dev = src.space == MemSpace::Device;
    auto ctx = transferContext();

    const SimTime api_start = host_now_;
    host_now_ += calib::kMemcpySetupBase;

    const SimTime ready = async_stream
        ? std::max(host_now_, async_stream->device_ready)
        : host_now_;

    gpu::CopyTiming timing;
    trace::EventKind kind;
    if (dst_dev && src_dev) {
        timing = gpu_.executeCopyD2D(ready, bytes, ctx);
        kind = trace::EventKind::MemcpyD2D;
    } else if (dst_dev || src_dev) {
        const auto dir = dst_dev ? pcie::Direction::HostToDevice
                                 : pcie::Direction::DeviceToHost;
        const MemSpace host_space = dst_dev ? src.space : dst.space;
        if (host_space == MemSpace::Managed) {
            // Explicit copies against managed memory behave like
            // prefetch/writeback of the managed range.
            const auto &managed = dst_dev ? src : dst;
            if (dir == pcie::Direction::HostToDevice)
                gpu_.uvm().markResident(managed.uvm_handle, bytes);
            else
                gpu_.uvm().invalidateDeviceResidency(
                    managed.uvm_handle);
        } else if (dst.space == MemSpace::Managed) {
            // host-pageable/pinned -> managed: data lands host-side.
            gpu_.uvm().invalidateDeviceResidency(dst.uvm_handle);
        }
        timing = gpu_.executeCopy(ready, bytes, dir,
                                  hostKindOf(host_space), ctx);
        kind = dir == pcie::Direction::HostToDevice
            ? trace::EventKind::MemcpyH2D
            : trace::EventKind::MemcpyD2H;
    } else if ((dst.space == MemSpace::Managed)
               != (src.space == MemSpace::Managed)) {
        // Host <-> managed while the managed range is host-resident:
        // a plain CPU copy, after which the managed data lives on
        // the host side.
        const auto &managed =
            dst.space == MemSpace::Managed ? dst : src;
        gpu_.uvm().invalidateDeviceResidency(managed.uvm_handle);
        host_now_ += transferTime(bytes, calib::kHostMemcpyGBs);
        return;  // not a device transfer: no trace event
    } else {
        fatal("host-to-host memcpy is not mediated by the runtime");
    }

    // Under CC, pinned/managed copies ride encrypted paging and the
    // profiler reclassifies them as managed D2D transfers (Fig. 5).
    if (timing.encrypted_paging)
        kind = trace::EventKind::MemcpyD2D;

    trace::TraceEvent ev;
    ev.kind = kind;
    ev.label = timing.encrypted_paging ? labels_.memcpy_managed
                                       : labels_.memcpy_plain;
    ev.start = timing.total.start;
    ev.end = timing.total.end;
    ev.bytes = bytes;
    ev.encrypted_paging = timing.encrypted_paging;

    if (async_stream) {
        host_now_ = api_start + calib::kAsyncIssueCost;
        async_stream->device_ready =
            std::max(async_stream->device_ready, timing.total.end);
        ev.stream = static_cast<int>(async_stream - streams_.data());
    } else {
        // Blocking semantics: the host rides the copy to completion.
        host_now_ = std::max(host_now_, timing.total.end);
        ev.stream = -1;
    }
    tracer_.record(std::move(ev));
}

void
Context::memcpy(const Buffer &dst, const Buffer &src, Bytes bytes)
{
    memcpyImpl(dst, src, bytes, nullptr);
}

void
Context::memcpyAsync(const Buffer &dst, const Buffer &src, Bytes bytes,
                     const Stream &stream)
{
    memcpyImpl(dst, src, bytes, &streamState(stream));
}

void
Context::memPrefetch(const Buffer &buffer, bool to_device)
{
    if (buffer.space != MemSpace::Managed)
        fatal("memPrefetch on a %s buffer",
              memSpaceName(buffer.space));
    auto ctx = transferContext();
    auto &uvm = gpu_.uvm();
    if (!to_device) {
        uvm.invalidateDeviceResidency(buffer.uvm_handle);
        host_now_ += calib::kSyncApiCost;
        return;
    }
    const Bytes missing =
        buffer.bytes - uvm.residentBytes(buffer.uvm_handle);
    if (missing == 0)
        return;
    const SimTime api_start = host_now_;
    host_now_ += calib::kMemcpySetupBase;
    const auto timing = gpu_.executeCopy(
        host_now_, missing, pcie::Direction::HostToDevice,
        gpu::HostMemKind::Managed, ctx);
    uvm.markResident(buffer.uvm_handle, buffer.bytes);
    host_now_ = std::max(host_now_, timing.total.end);

    trace::TraceEvent ev;
    ev.kind = timing.encrypted_paging ? trace::EventKind::MemcpyD2D
                                      : trace::EventKind::MemcpyH2D;
    ev.label = labels_.mem_prefetch;
    ev.start = api_start;
    ev.end = host_now_;
    ev.bytes = missing;
    ev.encrypted_paging = timing.encrypted_paging;
    tracer_.record(std::move(ev));
}

// ---------------------------------------------------------- kernels

SimTime
Context::launchImpl(const gpu::KernelDesc &kernel, StreamState &stream)
{
    obs_api_launches_->bump(1);
    SimTime lqt = 0;

    // Dispatch gap between consecutive launches.
    if (any_launch_) {
        const SimTime gap = interLaunchGap(config_.cc, rng_);
        host_now_ += gap;
        lqt += gap;
    }
    any_launch_ = true;

    // Software launch queue back-pressure: block until there is room.
    auto &pending = stream.pending;
    while (!pending.empty() && pending.front() <= host_now_)
        pending.pop_front();
    while (static_cast<int>(pending.size())
           >= calib::kLaunchQueueDepth) {
        const SimTime drain = pending.front();
        pending.pop_front();
        if (drain > host_now_) {
            lqt += drain - host_now_;
            host_now_ = drain;
        }
    }

    // The launch operation itself (KLO).
    const trace::LabelId klabel = tracer_.intern(kernel.name);
    const int prior = launchCount(klabel)++;
    const SimTime klo = launchOverhead(
        prior, launch_index_++, kernel.module_bytes, tdx_, rng_);
    const SimTime launch_start = host_now_;
    host_now_ += klo;

    trace::TraceEvent launch_ev;
    launch_ev.kind = trace::EventKind::Launch;
    launch_ev.label = klabel;
    launch_ev.start = launch_start;
    launch_ev.end = host_now_;
    launch_ev.stream = static_cast<int>(&stream - streams_.data());
    launch_ev.queue_wait = lqt;
    // Profilers report the module/binary size with the launch; the
    // CC projector uses it to price first-launch uploads.
    launch_ev.bytes = kernel.module_bytes > 0
        ? kernel.module_bytes : calib::kDefaultModuleBytes;
    const auto corr = tracer_.record(launch_ev);

    // Device side.
    auto ctx = transferContext();
    const auto sched =
        gpu_.executeKernel(host_now_, stream.device_ready, kernel, ctx);
    stream.device_ready = sched.end;
    pending.push_back(sched.end);
    obs_launch_queue_depth_->set(
        static_cast<std::int64_t>(pending.size()), host_now_);

    trace::TraceEvent kernel_ev;
    kernel_ev.kind = trace::EventKind::Kernel;
    kernel_ev.label = klabel;
    kernel_ev.start = sched.start;
    kernel_ev.end = sched.end;
    kernel_ev.stream = launch_ev.stream;
    kernel_ev.correlation = corr;
    kernel_ev.queue_wait = sched.kqt();
    tracer_.record(kernel_ev);
    return sched.end;
}

void
Context::launchKernel(const gpu::KernelDesc &kernel)
{
    launchImpl(kernel, streams_.front());
}

void
Context::launchKernel(const gpu::KernelDesc &kernel,
                      const Stream &stream)
{
    launchImpl(kernel, streamState(stream));
}

// ----------------------------------------------------------- graphs

GraphExec
Context::instantiateGraph(std::string name,
                          std::vector<gpu::KernelDesc> nodes)
{
    if (nodes.empty())
        fatal("graph '%s' has no nodes", name.c_str());
    GraphExec g;
    g.id_ = next_graph_id_++;
    g.name_ = std::move(name);
    g.instantiate_cost_ = calib::kGraphInstantiateFixed
        + calib::kGraphInstantiatePerNode
            * static_cast<SimTime>(nodes.size());
    g.nodes_ = std::move(nodes);
    host_now_ += g.instantiate_cost_;
    return g;
}

void
Context::launchGraph(const GraphExec &graph, const Stream &stream)
{
    obs_api_launches_->bump(1);
    auto &s = streamState(stream);
    SimTime lqt = 0;
    if (any_launch_) {
        const SimTime gap = interLaunchGap(config_.cc, rng_);
        host_now_ += gap;
        lqt += gap;
    }
    any_launch_ = true;

    // One host-side launch operation for the whole graph; first
    // launch uploads the largest constituent module.
    Bytes module = 0;
    for (const auto &node : graph.nodes())
        module = std::max(module, node.module_bytes);
    const trace::LabelId gcount_label =
        tracer_.intern("graph:" + graph.name());
    const int prior = launchCount(gcount_label)++;
    const SimTime klo = launchOverhead(prior, launch_index_++, module,
                                       tdx_, rng_);
    const SimTime launch_start = host_now_;
    host_now_ += klo;

    trace::TraceEvent launch_ev;
    launch_ev.kind = trace::EventKind::GraphLaunch;
    launch_ev.label = tracer_.intern(graph.name());
    launch_ev.start = launch_start;
    launch_ev.end = host_now_;
    launch_ev.stream = stream.id();
    launch_ev.queue_wait = lqt;
    launch_ev.bytes =
        module > 0 ? module : calib::kDefaultModuleBytes;
    const auto corr = tracer_.record(launch_ev);

    // The device dispatches nodes without further host involvement.
    auto ctx = transferContext();
    SimTime dispatch = host_now_;
    for (const auto &node : graph.nodes()) {
        dispatch += calib::kGraphNodeDispatch;
        const auto sched =
            gpu_.executeKernel(dispatch, s.device_ready, node, ctx);
        s.device_ready = sched.end;
        s.pending.push_back(sched.end);
        obs_launch_queue_depth_->set(
            static_cast<std::int64_t>(s.pending.size()), dispatch);

        trace::TraceEvent kernel_ev;
        kernel_ev.kind = trace::EventKind::Kernel;
        kernel_ev.label = tracer_.intern(node.name);
        kernel_ev.start = sched.start;
        kernel_ev.end = sched.end;
        kernel_ev.stream = stream.id();
        kernel_ev.correlation = corr;
        kernel_ev.queue_wait = sched.kqt();
        tracer_.record(kernel_ev);
    }
}

void
Context::launchGraph(const GraphExec &graph)
{
    launchGraph(graph, defaultStream());
}

// ---------------------------------------------------------- streams

Stream
Context::createStream()
{
    streams_.emplace_back();
    return Stream(static_cast<int>(streams_.size() - 1));
}

void
Context::memsetDevice(const Buffer &buffer, Bytes bytes)
{
    if (buffer.space != MemSpace::Device)
        fatal("memsetDevice on a %s buffer",
              memSpaceName(buffer.space));
    if (bytes > buffer.bytes)
        fatal("memset of %llu bytes exceeds the %llu-byte buffer",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(buffer.bytes));
    // The driver enqueues a fill kernel; model it as a D2D-class
    // blit writing at HBM bandwidth.
    auto ctx = transferContext();
    const auto timing = gpu_.executeCopyD2D(host_now_, bytes, ctx);
    host_now_ = std::max(host_now_, timing.total.end);

    trace::TraceEvent ev;
    ev.kind = trace::EventKind::MemcpyD2D;
    ev.label = labels_.memset_device;
    ev.start = timing.total.start;
    ev.end = timing.total.end;
    ev.bytes = bytes;
    tracer_.record(std::move(ev));
}

// ------------------------------------------------------------ events

Event
Context::recordEvent(const Stream &stream)
{
    auto &s = streamState(stream);
    // Recording is a lightweight semaphore packet on the stream.
    host_now_ += calib::kAsyncIssueCost / 2;
    return Event(next_event_id_++, s.device_ready,
                 next_event_seq_++);
}

Event
Context::recordEvent()
{
    return recordEvent(defaultStream());
}

SimTime
Context::eventElapsed(const Event &earlier, const Event &later) const
{
    if (earlier.seq_ > later.seq_) {
        fatal("eventElapsed: events passed in reverse record order");
    }
    return later.when_ - earlier.when_;
}

void
Context::streamWaitEvent(const Stream &stream, const Event &event)
{
    auto &s = streamState(stream);
    s.device_ready = std::max(s.device_ready, event.when_);
    host_now_ += calib::kAsyncIssueCost / 2;
}

void
Context::eventSynchronize(const Event &event)
{
    obs_api_syncs_->add(1);
    const SimTime start = host_now_;
    host_now_ = std::max(host_now_, event.when_);
    host_now_ += calib::kSyncApiCost;
    tracer_.record({trace::EventKind::Sync, labels_.event_sync,
                    start, host_now_, -1, 0, 0, 0, false});
}

// ------------------------------------------------------------- sync

void
Context::streamSynchronize(const Stream &stream)
{
    obs_api_syncs_->add(1);
    auto &s = streamState(stream);
    const SimTime start = host_now_;
    host_now_ = std::max(host_now_, s.device_ready);
    host_now_ += calib::kSyncApiCost;
    s.pending.clear();
    tracer_.record({trace::EventKind::Sync, labels_.stream_sync,
                    start, host_now_, stream.id(), 0, 0, 0, false});
}

void
Context::deviceSynchronize()
{
    obs_api_syncs_->add(1);
    const SimTime start = host_now_;
    SimTime target = host_now_;
    for (auto &s : streams_) {
        target = std::max(target, s.device_ready);
        s.pending.clear();
    }
    host_now_ = target + calib::kSyncApiCost;
    tracer_.record({trace::EventKind::Sync, labels_.device_sync,
                    start, host_now_, -1, 0, 0, 0, false});
}

void
Context::advanceHostTo(SimTime when)
{
    if (when <= host_now_)
        return;
    // Lazily created: closed-loop runs never call this, so their
    // stats dumps (and the committed CI baselines diffed against
    // them) do not grow a counter that is always zero for them.
    if (obs_idle_waits_ == nullptr)
        obs_idle_waits_ = &obs_->counter("runtime.api.idle_waits");
    obs_idle_waits_->add(1);
    host_now_ = when;
}

} // namespace hcc::rt
