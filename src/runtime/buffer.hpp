/**
 * @file
 * Buffer handles used by the runtime API.
 *
 * Buffers are opaque accounting objects (the simulator does not carry
 * application payloads on this path — functional data flow is tested
 * through the SecureChannel directly).  A buffer knows where it lives
 * and how big it is; that is all the transfer and UVM machinery needs.
 */

#ifndef HCC_RUNTIME_BUFFER_HPP
#define HCC_RUNTIME_BUFFER_HPP

#include <cstdint>

#include "common/units.hpp"

namespace hcc::rt {

/** Memory spaces distinguished by the transfer paths. */
enum class MemSpace
{
    HostPageable,  //!< plain malloc'd host memory
    HostPinned,    //!< cudaMallocHost
    Device,        //!< cudaMalloc
    Managed,       //!< cudaMallocManaged (UVM)
};

/** Printable space name. */
const char *memSpaceName(MemSpace space);

/** Handle to an allocation made through the Context. */
struct Buffer
{
    std::uint64_t id = 0;
    MemSpace space = MemSpace::HostPageable;
    Bytes bytes = 0;
    /** UVM allocation handle (Managed buffers only). */
    std::uint64_t uvm_handle = 0;

    bool valid() const { return id != 0; }
};

} // namespace hcc::rt

#endif // HCC_RUNTIME_BUFFER_HPP
