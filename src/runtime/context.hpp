/**
 * @file
 * The public runtime API: a CUDA-like interface over the simulated
 * CC system.  This is the library's main entry point.
 *
 * A Context stands for one guest (regular VM or TD) with one GPU
 * passed through.  Every API call advances the simulated host clock
 * by its modeled cost and records a trace event; device work is
 * scheduled onto the GPU's engines.  Construct two contexts — one
 * with cc=false, one with cc=true — run the same workload, and the
 * traces diff into every figure of the paper.
 *
 * Typical use:
 * @code
 *   rt::SystemConfig cfg;
 *   cfg.cc = true;
 *   rt::Context ctx(cfg);
 *   auto dev = ctx.mallocDevice(hcc::size::mib(64));
 *   auto host = ctx.hostPageable(hcc::size::mib(64));
 *   ctx.memcpy(dev, host, dev.bytes);          // H2D, encrypted
 *   gpu::KernelDesc k{.name = "saxpy", .duration = hcc::time::us(50)};
 *   ctx.launchKernel(k);
 *   ctx.deviceSynchronize();
 *   auto metrics = trace::analyze(ctx.tracer());
 * @endcode
 */

#ifndef HCC_RUNTIME_CONTEXT_HPP
#define HCC_RUNTIME_CONTEXT_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "gpu/gpu_device.hpp"
#include "obs/registry.hpp"
#include "pcie/link.hpp"
#include "runtime/buffer.hpp"
#include "runtime/graph.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"
#include "trace/tracer.hpp"

namespace hcc::snap { struct Snapshot; }

namespace hcc::rt {

/** Whole-system configuration (Table I knobs that matter). */
struct SystemConfig
{
    /** Run inside a TD with the GPU in CC mode. */
    bool cc = false;
    /** PCIe link parameters. */
    pcie::LinkConfig link;
    /** CC transfer-path tunables (ignored when cc == false). */
    tee::ChannelConfig channel;
    /** GPU device parameters (cc_mode is forced to match cc). */
    gpu::GpuConfig gpu;
    /** Master seed for all stochastic costs. */
    std::uint64_t seed = 1;
    /** Fault-injection rates (all zero: no faults, byte-identical
     *  behaviour to a build without the fault subsystem). */
    fault::FaultConfig faults;
};

/** Opaque stream handle. */
class Stream
{
  public:
    int id() const { return id_; }

  private:
    friend class Context;
    explicit Stream(int id) : id_(id) {}
    int id_;
};

/** Opaque recorded-event handle. */
class Event
{
  public:
    std::uint64_t id() const { return id_; }

  private:
    friend class Context;
    Event(std::uint64_t id, SimTime when, std::uint64_t seq)
        : id_(id), when_(when), seq_(seq)
    {}
    std::uint64_t id_;
    /** Device completion point captured at record time. */
    SimTime when_;
    /** Program-order sequence number (for elapsed-time checks). */
    std::uint64_t seq_;
};

/**
 * One guest + one GPU.  See file comment for usage.
 */
class Context
{
  public:
    explicit Context(const SystemConfig &config = SystemConfig{});

    // ------------------------------------------------------- memory

    /** cudaMalloc. */
    Buffer mallocDevice(Bytes bytes);
    /** cudaMallocHost (pinned). */
    Buffer mallocHost(Bytes bytes);
    /** cudaMallocManaged (UVM). */
    Buffer mallocManaged(Bytes bytes);
    /** Plain malloc'd host memory (no driver involvement, free). */
    Buffer hostPageable(Bytes bytes);
    /** cudaFree (any driver allocation). */
    void free(Buffer &buffer);

    /**
     * The CPU writes a managed buffer: device residency is dropped
     * and the next device access will fault pages back over.
     */
    void cpuTouchManaged(const Buffer &buffer);

    // ---------------------------------------------------- transfers

    /**
     * Blocking cudaMemcpy; direction inferred from the buffer
     * spaces.  @p bytes must not exceed either buffer.
     */
    void memcpy(const Buffer &dst, const Buffer &src, Bytes bytes);

    /** Async copy ordered on @p stream. */
    void memcpyAsync(const Buffer &dst, const Buffer &src, Bytes bytes,
                     const Stream &stream);

    /**
     * cudaMemPrefetchAsync analog: migrate a managed buffer's pages
     * to the device (@p to_device) or back to the host, through the
     * same transfer path demand faults would use — but in bulk.
     */
    void memPrefetch(const Buffer &buffer, bool to_device);

    /**
     * cudaMemset analog: device-side fill of the first @p bytes of a
     * device buffer; runs as a small fill kernel at HBM bandwidth.
     */
    void memsetDevice(const Buffer &buffer, Bytes bytes);

    // ------------------------------------------------------ kernels

    /** Launch on the default stream. */
    void launchKernel(const gpu::KernelDesc &kernel);
    /** Launch on a specific stream. */
    void launchKernel(const gpu::KernelDesc &kernel,
                      const Stream &stream);

    // ------------------------------------------------------- graphs

    /** Capture + instantiate a linear graph of kernel nodes. */
    GraphExec instantiateGraph(std::string name,
                               std::vector<gpu::KernelDesc> nodes);
    /** Replay an instantiated graph with one launch operation. */
    void launchGraph(const GraphExec &graph, const Stream &stream);
    void launchGraph(const GraphExec &graph);

    // ------------------------------------------------------ streams

    Stream createStream();
    Stream defaultStream() const { return Stream(0); }

    // ------------------------------------------------------- events

    /**
     * cudaEventRecord analog: capture the point at which all work
     * currently queued on @p stream completes.
     */
    Event recordEvent(const Stream &stream);
    /** Record on the default stream. */
    Event recordEvent();

    /**
     * cudaEventElapsedTime analog: device-side time between two
     * recorded events, in simulated time.  Fatal if @p later was
     * recorded (in program order) before @p earlier.
     */
    SimTime eventElapsed(const Event &earlier,
                         const Event &later) const;

    /**
     * cudaStreamWaitEvent analog: work later queued on @p stream may
     * not start before @p event's captured completion point.
     */
    void streamWaitEvent(const Stream &stream, const Event &event);

    /** Block the host until the event's work completed. */
    void eventSynchronize(const Event &event);

    // --------------------------------------------------------- sync

    /** Block until @p stream drains. */
    void streamSynchronize(const Stream &stream);
    /** Block until all device work drains. */
    void deviceSynchronize();

    /**
     * Idle the host clock forward to an external wall-clock point —
     * the arrival clock of open-loop workloads (`hccsim serve`).  A
     * serving loop with an empty batch sleeps until the next request
     * arrival; that wait is host idle time, not an API cost, so it
     * records no trace event and draws no RNG (a Context driven
     * through the same API sequence stays byte-identical whether or
     * not the idle waits happen to be zero-length).  No-op when
     * @p when is not in the future.
     */
    void advanceHostTo(SimTime when);

    // -------------------------------------------------- inspection

    /** Current simulated host time. */
    SimTime now() const { return host_now_; }
    bool cc() const { return config_.cc; }
    const SystemConfig &config() const { return config_; }

    trace::Tracer &tracer() { return tracer_; }
    const trace::Tracer &tracer() const { return tracer_; }

    /**
     * The per-context stats registry: every component of this system
     * publishes its "tee.*" / "crypto.*" / "gpu.*" / "pcie.*" /
     * "sim.*" / "runtime.*" stats here.  Each Context owns its own
     * registry, so base/CC compare runs never mix stats.
     */
    obs::Registry &obs() { return *obs_; }
    const obs::Registry &obs() const { return *obs_; }
    /** Shared ownership (outlives the Context, e.g. for reporting). */
    std::shared_ptr<obs::Registry> obsPtr() const { return obs_; }

    tee::TdxModule &tdx() { return tdx_; }
    const tee::TdxModule &tdx() const { return tdx_; }
    gpu::GpuDevice &device() { return gpu_; }
    pcie::PcieLink &link() { return link_; }
    tee::SecureChannel *channel() { return channel_.get(); }

    /** The context's fault injector (always present; unarmed when
     *  all configured rates are zero). */
    fault::Injector &faultInjector() { return *fault_; }

    /** Live driver allocations (leak checking in tests). */
    std::size_t liveAllocations() const { return allocs_.size(); }

    // ---------------------------------------------------- snapshots

    /**
     * Capture the full deterministic simulator state — host clock,
     * streams, allocations, RNG streams, GPU engines, GMMU/UVM maps,
     * trace buffer and stats registry — into @p out as named
     * per-subsystem sections.  Restore-in-place contract: the capture
     * is only valid for restoreSnapshot() on this same Context (or a
     * Context constructed from the identical SystemConfig and driven
     * through the identical call sequence), because cached stat
     * pointers and interned labels are not serialized, only values.
     */
    void captureSnapshot(snap::Snapshot &out);

    /**
     * Restore state captured by captureSnapshot().  Fatal when the
     * snapshot's mode does not match this context's configuration or
     * a section is missing/truncated.
     */
    void restoreSnapshot(const snap::Snapshot &snap);

    /**
     * Re-arm fault injection with @p faults as if the Context had
     * been constructed with them (streams re-forked from this
     * context's seed, counts cleared).  The campaign fork engine
     * calls this after restoring a cell so every cell shares one
     * unarmed warmup prefix.
     */
    void
    armFaults(const fault::FaultConfig &faults)
    {
        config_.faults = faults;
        fault_->arm(faults, config_.seed);
    }

    /**
     * Switch every seed-derived stochastic stream to @p seed,
     * leaving them exactly where a Context constructed with @p seed
     * would start: the runtime jitter RNG, the GPU's KET/decode
     * jitter RNGs and the fault injector's site streams.  This is
     * the cross-seed fork-point step of snap::runForkGroup — a group
     * runs one prefix under a seed-independent identity seed, then
     * each cell reseeds to its own seed here; the cold control
     * replays the same derivation, so fork and cold stay
     * byte-identical.  Deterministic state (clocks, timelines,
     * allocations, trace) is untouched.
     */
    void reseedAtFork(std::uint64_t seed);

  private:
    struct StreamState
    {
        /** Device-side completion time of the last operation. */
        SimTime device_ready = 0;
        /** Completion times of in-flight kernels (launch queue). */
        std::deque<SimTime> pending;
    };

    struct AllocInfo
    {
        MemSpace space;
        Bytes bytes;
        std::uint64_t uvm_handle = 0;
    };

    StreamState &streamState(const Stream &stream);
    gpu::TransferContext transferContext();
    gpu::HostMemKind hostKindOf(MemSpace space) const;

    /** Shared body of blocking/async memcpy. */
    void memcpyImpl(const Buffer &dst, const Buffer &src, Bytes bytes,
                    StreamState *async_stream);

    /** Shared launch body; returns the kernel completion time. */
    SimTime launchImpl(const gpu::KernelDesc &kernel,
                       StreamState &stream);

    /**
     * Snapshot support for the runtime-local state (the "runtime"
     * section); subsystems serialize into their own sections.
     */
    template <class Ar>
    void
    snapRuntimeState(Ar &ar)
    {
        ar.pod(host_now_);
        // The mutable slice of config_: armFaults() and
        // reseedAtFork() write these, and reseedAtFork() re-arms the
        // injector from config_.faults — a restore must rewind them
        // or a snapshot-tree node materialized after a faulted leaf
        // would re-arm that leaf's stale rates into its segment.
        ar.pod(config_.seed);
        ar.pod(config_.faults.rates);
        // The mutable slice of config_: armFaults() and
        // reseedAtFork() write these, and reseedAtFork() re-arms the
        // injector from config_.faults — a restore must rewind them
        // or a snapshot-tree node materialized after a faulted leaf
        // would re-arm that leaf's stale rates into its segment.
        const std::size_t nstreams = ar.size(streams_.size());
        if constexpr (Ar::kLoading)
            streams_.resize(nstreams);
        for (auto &s : streams_) {
            ar.pod(s.device_ready);
            const std::size_t npending = ar.size(s.pending.size());
            if constexpr (Ar::kLoading) {
                s.pending.clear();
                for (std::size_t i = 0; i < npending; ++i) {
                    SimTime t = 0;
                    ar.pod(t);
                    s.pending.push_back(t);
                }
            } else {
                for (SimTime t : s.pending)
                    ar.pod(t);
            }
        }
        const std::size_t nallocs = ar.size(allocs_.size());
        if constexpr (Ar::kLoading) {
            allocs_.clear();
            for (std::size_t i = 0; i < nallocs; ++i) {
                std::uint64_t id = 0;
                AllocInfo info{};
                ar.pod(id);
                ar.pod(info);
                allocs_.emplace(id, info);
            }
        } else {
            for (auto &kv : allocs_) {
                std::uint64_t id = kv.first;
                ar.pod(id);
                ar.pod(kv.second);
            }
        }
        ar.pod(next_buffer_id_);
        ar.pod(next_graph_id_);
        ar.pod(next_event_id_);
        ar.pod(next_event_seq_);
        rng_.snapState(ar);
        ar.podVec(kernel_launch_counts_);
        ar.pod(launch_index_);
        ar.pod(any_launch_);
    }

    SystemConfig config_;
    // The registry must be the first member: every component below
    // captures stat pointers into it at construction.
    std::shared_ptr<obs::Registry> obs_;
    // The injector comes right after: the components below hold a
    // pointer to it for their fault sites.
    std::unique_ptr<fault::Injector> fault_;
    tee::TdxModule tdx_;
    pcie::PcieLink link_;
    std::unique_ptr<tee::SecureChannel> channel_;
    gpu::GpuDevice gpu_;
    trace::Tracer tracer_;
    Rng rng_;

    obs::Counter *obs_api_allocs_ = nullptr;
    obs::Counter *obs_api_frees_ = nullptr;
    obs::Counter *obs_api_memcpys_ = nullptr;
    obs::Counter *obs_api_launches_ = nullptr;
    obs::Counter *obs_api_syncs_ = nullptr;
    /** Created lazily on the first advanceHostTo() so closed-loop
     *  runs (and their committed stats baselines) never see it. */
    obs::Counter *obs_idle_waits_ = nullptr;
    obs::Gauge *obs_launch_queue_depth_ = nullptr;

    SimTime host_now_ = 0;
    std::vector<StreamState> streams_;
    std::map<std::uint64_t, AllocInfo> allocs_;
    std::uint64_t next_buffer_id_ = 1;
    std::uint64_t next_graph_id_ = 1;
    std::uint64_t next_event_id_ = 1;
    std::uint64_t next_event_seq_ = 1;
    /** Pre-interned labels for the fixed API event names. */
    struct ApiLabels
    {
        trace::LabelId malloc_device;
        trace::LabelId malloc_host;
        trace::LabelId malloc_managed;
        trace::LabelId free_buffer;
        trace::LabelId memcpy_plain;
        trace::LabelId memcpy_managed;
        trace::LabelId mem_prefetch;
        trace::LabelId memset_device;
        trace::LabelId event_sync;
        trace::LabelId stream_sync;
        trace::LabelId device_sync;
    };
    ApiLabels labels_{};

    /**
     * Restore-in-place fast path: the trace watermarks of the live
     * captures, in capture order.  Each capture on this Context
     * pushes its token + mark; as long as no foreign snapshot was
     * restored since, every stacked capture's events are still an
     * unchanged prefix of the append-only tracer, so restoring *any*
     * of them truncates to its mark instead of replaying ~MBs of
     * section bytes.  Restoring entry i pops everything deeper than
     * i (their marks no longer describe a prefix once new events are
     * appended); a foreign-snapshot restore clears the stack.  The
     * snapshot-tree executor leans on this: a DFS over tree nodes
     * restores ancestors repeatedly and always hits the fast path.
     */
    std::vector<std::pair<std::uint64_t, trace::Tracer::Mark>>
        snap_marks_;
    std::uint64_t snap_token_seq_ = 0;

    /**
     * Launches seen per kernel symbol (first-launch extras), indexed
     * by the symbol's interned trace label.
     */
    std::vector<int> kernel_launch_counts_;

    /** kernel_launch_counts_ slot for @p label, grown on demand. */
    int &
    launchCount(trace::LabelId label)
    {
        if (label >= kernel_launch_counts_.size())
            kernel_launch_counts_.resize(label + 1, 0);
        return kernel_launch_counts_[label];
    }
    /** Global launch ordinal (doorbell batching). */
    int launch_index_ = 0;
    /** Whether any launch happened yet (inter-launch gap). */
    bool any_launch_ = false;
};

} // namespace hcc::rt

#endif // HCC_RUNTIME_CONTEXT_HPP
