/**
 * @file
 * Data-parallel training across GPUs under CC.
 *
 * Each training step computes local gradients per GPU and then
 * all-reduces them.  Without CC the reduction rides PCIe P2P; in CC
 * mode each GPU is bound to its TD and peer traffic must bounce
 * through host memory encrypted in both directions — the collective
 * becomes the bottleneck long before compute does.
 *
 *   ./examples/multi_gpu_training
 */

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "multigpu/multi_gpu.hpp"

namespace {

using namespace hcc;

/** One data-parallel step: local compute then gradient all-reduce. */
SimTime
step(multigpu::MultiGpuSystem &sys, Bytes grad_bytes,
     SimTime compute)
{
    // Local compute happens in parallel on every GPU; the collective
    // starts when the slowest finishes.
    const auto reduce = sys.allReduce(grad_bytes, compute);
    return reduce.total.end;
}

} // namespace

int
main()
{
    std::cout << "Data-parallel training: gradient all-reduce "
                 "under CC\n\n";

    const Bytes grads = size::mib(100);      // ~ResNet50 FP32 grads
    const SimTime compute = time::ms(30.0);  // per-step local work

    TextTable t("per-step time (30 ms local compute + 100 MiB "
                "gradient all-reduce)");
    t.header({"gpus", "base", "cc", "cc/base",
              "collective share (cc)"});
    for (int n : {2, 4, 8}) {
        multigpu::MultiGpuConfig base_cfg, cc_cfg;
        base_cfg.gpus = cc_cfg.gpus = n;
        cc_cfg.cc = true;
        multigpu::MultiGpuSystem base(base_cfg), cc(cc_cfg);

        const SimTime tb = step(base, grads, compute);
        const SimTime tc = step(cc, grads, compute);
        t.row({std::to_string(n), formatTime(tb), formatTime(tc),
               TextTable::ratio(static_cast<double>(tc)
                                / static_cast<double>(tb)),
               TextTable::pct(
                   100.0
                   * static_cast<double>(tc - compute)
                   / static_cast<double>(tc))});
    }
    t.print(std::cout);

    std::cout << "\nWithout P2P, every gradient byte crosses the "
                 "host twice through the software-encrypted path; "
                 "scaling out makes it worse, not better.  This is "
                 "why multi-GPU TEE designs ([83], [132]) focus on "
                 "hardware-assisted peer encryption.\n";
    return 0;
}
