/**
 * @file
 * Secure LLM inference: the paper's motivating cloud scenario.
 *
 * A tenant wants Llama-3-8B served on confidential hardware.  This
 * example walks the serving decisions under CC: which backend, which
 * quantization, what batch size — and prints the throughput cost of
 * confidentiality for each choice.
 *
 *   ./examples/secure_inference
 */

#include <iostream>

#include "common/table.hpp"
#include "ml/llm.hpp"
#include "runtime/context.hpp"

namespace {

double
throughput(hcc::ml::LlmBackend backend, hcc::ml::LlmQuant quant,
           int batch, bool cc)
{
    using namespace hcc;
    rt::SystemConfig sys;
    sys.cc = cc;
    rt::Context ctx(sys);
    ml::LlmConfig cfg;
    cfg.backend = backend;
    cfg.quant = quant;
    cfg.batch = batch;
    return ml::serveLlm(ctx, cfg).tokens_per_s;
}

} // namespace

int
main()
{
    using namespace hcc;
    using ml::LlmBackend;
    using ml::LlmQuant;

    std::cout << "Serving Llama-3-8B confidentially: what does CC "
                 "cost, and what wins it back?\n\n";

    TextTable t("tokens/s by configuration");
    t.header({"batch", "backend", "quant", "CC-off", "CC-on",
              "CC tax"});
    for (int batch : {1, 16, 64}) {
        for (auto backend :
             {LlmBackend::HuggingFace, LlmBackend::Vllm}) {
            for (auto quant : {LlmQuant::Bf16, LlmQuant::Awq4}) {
                const double off =
                    throughput(backend, quant, batch, false);
                const double on =
                    throughput(backend, quant, batch, true);
                t.row({std::to_string(batch),
                       ml::llmBackendName(backend),
                       ml::llmQuantName(quant),
                       TextTable::num(off, 0),
                       TextTable::num(on, 0),
                       TextTable::pct((1.0 - on / off) * 100.0)});
            }
        }
    }
    t.print(std::cout);

    std::cout << "\nTakeaways (match the paper's Observation 9):\n"
              << "  - the serving backend matters more than CC: "
                 "vLLM under CC still beats HF without CC;\n"
              << "  - AWQ 4-bit wins at small batch (memory-bound "
                 "decode), BF16 wins at large batch;\n"
              << "  - the CC tax shrinks as batch grows and decode "
                 "becomes compute-bound.\n";
    return 0;
}
