/**
 * @file
 * The trust-establishment flow that precedes every confidential
 * session (Sec. III): measure the stack, attest it to the tenant,
 * and only then move data — plus what happens when the stack was
 * tampered with.
 *
 *   ./examples/attested_session
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "runtime/context.hpp"
#include "tee/attestation.hpp"

namespace {

using namespace hcc;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** Boot-time measurements of one platform. */
struct Platform
{
    tee::MeasurementRegister mrtd, rtmr, gpu_fw;

    explicit Platform(const std::string &driver)
    {
        mrtd.extendComponent("td-kernel", bytes("linux-6.2-tdx"));
        mrtd.extendComponent("td-initrd", bytes("initrd-v1"));
        rtmr.extendComponent("nvidia-driver", bytes(driver));
        rtmr.extendComponent("cuda-runtime", bytes("12.4"));
        gpu_fw.extendComponent("gsp-firmware", bytes("gsp-535.cc"));
    }
};

} // namespace

int
main()
{
    std::cout << "Confidential session establishment\n\n";

    // The tenant knows the golden measurements it is willing to
    // trust (published by the vendor / reproducible builds).
    Platform golden("550.127.05");
    std::vector<std::uint8_t> platform_key(32, 0x5a);
    tee::AttestationService service(platform_key);

    auto verify = [&](const char *label, const Platform &p,
                      std::uint64_t nonce) {
        const auto quote = service.generateQuote(p.mrtd, p.rtmr,
                                                 p.gpu_fw, nonce);
        const bool ok = service.verifyQuote(
            quote, nonce, golden.mrtd.value(), golden.rtmr.value(),
            golden.gpu_fw.value());
        std::cout << "  " << label << ": "
                  << (ok ? "TRUSTED" : "REJECTED") << " (quote gen "
                  << formatTime(tee::AttestationService::kQuoteGenCost)
                  << ", verify "
                  << formatTime(
                         tee::AttestationService::kQuoteVerifyCost)
                  << ")\n";
        return ok;
    };

    std::cout << "1. Tenant challenges the platform (fresh nonce):\n";
    Platform honest("550.127.05");
    const bool trusted = verify("honest platform", honest, 1001);

    std::cout << "\n2. A platform running a tampered driver:\n";
    Platform tampered("550.127.05-PATCHED");
    verify("tampered platform", tampered, 1002);

    if (!trusted)
        return 1;

    std::cout << "\n3. Trust established — bind the GPU and move "
                 "data through the encrypted session:\n";
    rt::SystemConfig cfg;
    cfg.cc = true;
    rt::Context ctx(cfg);  // SPDM handshake + session keys
    std::cout << "  SPDM handshake: "
              << formatTime(tee::SpdmSession::kHandshakeCost)
              << " (one-time)\n";
    auto host = ctx.hostPageable(size::mib(16));
    auto dev = ctx.mallocDevice(size::mib(16));
    const SimTime t0 = ctx.now();
    ctx.memcpy(dev, host, size::mib(16));
    std::cout << "  first encrypted H2D of "
              << formatBytes(size::mib(16)) << ": "
              << formatTime(ctx.now() - t0) << "\n";

    std::cout << "\nEverything after this point is what the rest of "
                 "this repository measures.\n";
    return 0;
}
