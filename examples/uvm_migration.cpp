/**
 * @file
 * UVM vs explicit copies under CC: why encrypted paging hurts.
 *
 * Runs the same stencil computation three ways —
 *   (1) copy-then-execute with explicit cudaMemcpy,
 *   (2) managed memory (UVM) faulting pages on first touch,
 *   (3) managed memory with an explicit prefetch —
 * in both base and CC modes, showing the paper's Observation 5: UVM
 * kernels suffer catastrophic slowdowns under CC while explicit
 * copies only pay the (bounded) encrypted-transfer tax.
 *
 *   ./examples/uvm_migration
 */

#include <iostream>

#include "common/table.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"

namespace {

using namespace hcc;

constexpr Bytes kData = size::mib(48);
constexpr SimTime kKernelTime = time::us(400.0);
constexpr int kIterations = 8;

SimTime
kernelTimeTotal(rt::Context &ctx)
{
    const auto m = trace::analyze(ctx.tracer());
    return m.sumKet();
}

/** (1) Explicit copies. */
SimTime
runExplicit(bool cc)
{
    rt::SystemConfig cfg;
    cfg.cc = cc;
    rt::Context ctx(cfg);
    auto host = ctx.hostPageable(kData);
    auto dev = ctx.mallocDevice(kData);
    ctx.memcpy(dev, host, kData);
    for (int i = 0; i < kIterations; ++i) {
        gpu::KernelDesc k{"stencil", {}, kKernelTime, 0, 0};
        ctx.launchKernel(k);
    }
    ctx.deviceSynchronize();
    const SimTime ket = kernelTimeTotal(ctx);
    ctx.free(dev);
    ctx.free(host);
    return ket;
}

/** (2) Managed, demand faulting. */
SimTime
runUvm(bool cc, bool prefetch)
{
    rt::SystemConfig cfg;
    cfg.cc = cc;
    rt::Context ctx(cfg);
    auto managed = ctx.mallocManaged(kData);
    auto host = ctx.hostPageable(kData);
    if (prefetch) {
        // Explicit migration ahead of the kernels: pays the copy
        // once, on the bulk copy path, instead of per-fault.
        ctx.memPrefetch(managed, /*to_device=*/true);
    }
    for (int i = 0; i < kIterations; ++i) {
        gpu::KernelDesc k{"stencil", {}, kKernelTime, kData,
                          managed.uvm_handle};
        ctx.launchKernel(k);
    }
    ctx.deviceSynchronize();
    const SimTime ket = kernelTimeTotal(ctx);
    ctx.free(managed);
    ctx.free(host);
    return ket;
}

} // namespace

int
main()
{
    std::cout << "Unified memory under confidential computing: "
              << formatBytes(kData) << " footprint, " << kIterations
              << " stencil iterations\n\n";

    TextTable t("total kernel execution time (KET)");
    t.header({"strategy", "base", "cc", "cc/base"});
    auto row = [&](const char *name, SimTime b, SimTime c) {
        t.row({name, formatTime(b), formatTime(c),
               TextTable::ratio(static_cast<double>(c)
                                / static_cast<double>(b))});
    };
    row("explicit cudaMemcpy", runExplicit(false), runExplicit(true));
    row("UVM, demand faulting", runUvm(false, false),
        runUvm(true, false));
    row("UVM + prefetch", runUvm(false, true), runUvm(true, true));
    t.print(std::cout);

    std::cout << "\nUnder CC every fault batch round-trips through "
                 "hypercalls and the encrypted bounce buffer with "
                 "tiny batches (encrypted paging), so demand-faulted "
                 "UVM kernels blow up; prefetching restores the "
                 "copy-then-execute economics.\n";
    return 0;
}
