/**
 * @file
 * Quickstart: the smallest end-to-end use of the public API.
 *
 * Runs a copy-then-execute "saxpy"-style app twice — in a regular VM
 * and inside a TD with the GPU in CC mode — and prints where the
 * extra time went using the paper's performance-model decomposition.
 *
 *   ./examples/quickstart
 */

#include <iostream>

#include "perfmodel/model.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"

namespace {

hcc::SimTime
runApp(bool cc)
{
    using namespace hcc;

    rt::SystemConfig cfg;
    cfg.cc = cc;
    rt::Context ctx(cfg);
    const SimTime app_start = ctx.now();  // after CC attestation

    // 1. Allocate: 64 MiB of input, 64 MiB of output.
    const Bytes n = size::mib(64);
    auto host_in = ctx.hostPageable(n);
    auto host_out = ctx.hostPageable(n);
    auto dev_in = ctx.mallocDevice(n);
    auto dev_out = ctx.mallocDevice(n);

    // 2. Copy-then-execute: H2D, 50 kernels, D2H.
    ctx.memcpy(dev_in, host_in, n);
    for (int i = 0; i < 50; ++i) {
        gpu::KernelDesc k;
        k.name = "saxpy";
        k.duration = time::us(120.0);
        ctx.launchKernel(k);
    }
    ctx.deviceSynchronize();
    ctx.memcpy(host_out, dev_out, n);

    // 3. Teardown.
    ctx.free(dev_in);
    ctx.free(dev_out);
    ctx.free(host_in);
    ctx.free(host_out);

    // 4. Where did the time go?  (Fig. 3 decomposition.)
    const auto d = hcc::perfmodel::decompose(ctx.tracer());
    std::cout << "\n--- " << (cc ? "CC-on (TD)" : "CC-off (VM)")
              << " ---\n"
              << d.report();
    return ctx.now() - app_start;
}

} // namespace

int
main()
{
    std::cout << "hcc-sim quickstart: one app, two worlds\n";
    const auto base = runApp(false);
    const auto cc = runApp(true);
    std::cout << "\nEnd-to-end: base " << hcc::formatTime(base)
              << ", cc " << hcc::formatTime(cc) << " ("
              << static_cast<double>(cc) / static_cast<double>(base)
              << "x)\n"
              << "(CC attestation/SPDM handshake happens once at "
                 "context creation and is not part of the app "
                 "time.)\n";
    return 0;
}
