/**
 * @file
 * Tuning a launch-bound loop for CC: fusion and overlap in practice.
 *
 * Takes a 3dconv-style iterative app (many short kernels, low
 * kernel-to-launch ratio) and applies the paper's two Sec. VII-A
 * optimizations step by step:
 *   step 0: naive loop,
 *   step 1: kernel fusion (merge 4 iterations per kernel),
 *   step 2: graph launch fusion (one launch per 32 iterations),
 *   step 3: overlap the input transfer with a second stream.
 *
 *   ./examples/fusion_tuning
 */

#include <iostream>

#include "common/table.hpp"
#include "runtime/context.hpp"

namespace {

using namespace hcc;

constexpr int kIterations = 256;
constexpr SimTime kIterKet = time::us(4.0);
constexpr Bytes kInput = size::mib(8);

rt::Context
makeCtx(bool cc)
{
    rt::SystemConfig cfg;
    cfg.cc = cc;
    return rt::Context(cfg);
}

SimTime
naiveLoop(bool cc)
{
    auto ctx = makeCtx(cc);
    auto host = ctx.hostPageable(kInput);
    auto dev = ctx.mallocDevice(kInput);
    const SimTime t0 = ctx.now();
    ctx.memcpy(dev, host, kInput);
    gpu::KernelDesc k{"conv_iter", {}, kIterKet, 0, 0};
    for (int i = 0; i < kIterations; ++i)
        ctx.launchKernel(k);
    ctx.deviceSynchronize();
    return ctx.now() - t0;
}

SimTime
fusedKernels(bool cc, int fuse)
{
    auto ctx = makeCtx(cc);
    auto host = ctx.hostPageable(kInput);
    auto dev = ctx.mallocDevice(kInput);
    const SimTime t0 = ctx.now();
    ctx.memcpy(dev, host, kInput);
    gpu::KernelDesc k{"conv_fused", {}, kIterKet * fuse, 0, 0};
    for (int i = 0; i < kIterations / fuse; ++i)
        ctx.launchKernel(k);
    ctx.deviceSynchronize();
    return ctx.now() - t0;
}

SimTime
graphLaunch(bool cc, int fuse, int per_graph)
{
    // Fused kernels (so the device is not decode-bound) replayed as
    // a graph (so the host is not launch-bound).
    auto ctx = makeCtx(cc);
    auto host = ctx.hostPageable(kInput);
    auto dev = ctx.mallocDevice(kInput);
    const SimTime t0 = ctx.now();
    ctx.memcpy(dev, host, kInput);
    gpu::KernelDesc k{"conv_fused", {}, kIterKet * fuse, 0, 0};
    auto g = ctx.instantiateGraph(
        "conv_loop", std::vector<gpu::KernelDesc>(
                         static_cast<std::size_t>(per_graph), k));
    for (int i = 0; i < kIterations / (fuse * per_graph); ++i)
        ctx.launchGraph(g);
    ctx.deviceSynchronize();
    return ctx.now() - t0;
}

SimTime
overlapped(bool cc, int fuse, int per_graph)
{
    auto ctx = makeCtx(cc);
    // Pinned staging + a copy stream: the transfer rides alongside
    // the compute of the first graph batches (raising alpha).
    auto host = ctx.mallocHost(kInput);
    auto dev = ctx.mallocDevice(kInput);
    auto copy_stream = ctx.createStream();
    const SimTime t0 = ctx.now();
    ctx.memcpyAsync(dev, host, kInput, copy_stream);
    gpu::KernelDesc k{"conv_fused", {}, kIterKet * fuse, 0, 0};
    auto g = ctx.instantiateGraph(
        "conv_loop", std::vector<gpu::KernelDesc>(
                         static_cast<std::size_t>(per_graph), k));
    for (int i = 0; i < kIterations / (fuse * per_graph); ++i)
        ctx.launchGraph(g);
    ctx.deviceSynchronize();
    return ctx.now() - t0;
}

} // namespace

int
main()
{
    std::cout << "Tuning a low-KLR loop (" << kIterations << " x "
              << formatTime(kIterKet) << " kernels, "
              << formatBytes(kInput) << " input) for CC\n\n";

    TextTable t("end-to-end time by optimization step");
    t.header({"step", "base", "cc", "cc/base"});
    auto row = [&](const char *name, SimTime b, SimTime c) {
        t.row({name, formatTime(b), formatTime(c),
               TextTable::ratio(static_cast<double>(c)
                                / static_cast<double>(b))});
    };
    row("0: naive loop", naiveLoop(false), naiveLoop(true));
    row("1: fuse 4 iters/kernel", fusedKernels(false, 4),
        fusedKernels(true, 4));
    row("2: + graph, 32 iters/launch", graphLaunch(false, 4, 8),
        graphLaunch(true, 4, 8));
    row("3: + overlap transfer", overlapped(false, 4, 8),
        overlapped(true, 4, 8));
    t.print(std::cout);

    std::cout << "\nEach step shrinks the CC-sensitive terms of the "
                 "performance model: fusion cuts sum(KLO + LQT), "
                 "graphs amortize the launch path, and overlap "
                 "raises alpha so the encrypted transfer hides under "
                 "compute.\n";
    return 0;
}
