/**
 * @file
 * Fig. 7: effect of CC on KLO, LQT and KQT per app, normalized to
 * non-CC.  Apps with a single launch (no queuing) are excluded from
 * the LQT column, as in the paper.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int
main()
{
    using namespace hcc;

    TextTable table("Fig. 7 — KLO / LQT / KQT, CC normalized to base");
    table.header({"app", "launches", "KLO", "LQT", "KQT"});

    std::vector<double> klo_r, lqt_r, kqt_r;
    for (const auto &app : workloads::evaluationApps()) {
        const auto pair = bench::runPair(app);
        const auto &b = pair.base.metrics;
        const auto &c = pair.cc.metrics;

        const double klo = bench::ratio(c.klo.mean(), b.klo.mean());
        const double lqt = bench::ratio(c.lqt.mean(), b.lqt.mean());
        const double kqt = bench::ratio(c.kqt.mean(), b.kqt.mean());
        klo_r.push_back(klo);
        if (b.launches > 1) {
            lqt_r.push_back(lqt);
            kqt_r.push_back(kqt);
        }
        table.row({app, std::to_string(b.launches),
                   TextTable::ratio(klo),
                   b.launches > 1 ? TextTable::ratio(lqt) : "-",
                   b.launches > 1 ? TextTable::ratio(kqt) : "-"});
    }
    table.print(std::cout);

    std::cout << "\nSummary (paper: KLO 1.42x, LQT 1.43x, KQT 2.32x "
                 "on average)\n"
              << "  measured: KLO " << TextTable::ratio(mean(klo_r))
              << ", LQT " << TextTable::ratio(mean(lqt_r))
              << ", KQT " << TextTable::ratio(mean(kqt_r)) << "\n";
    return 0;
}
