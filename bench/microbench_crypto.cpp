/**
 * @file
 * google-benchmark suite over the functional crypto primitives: real
 * throughput of the from-scratch AES/GCM/XTS/GHASH code and of the
 * end-to-end SecureChannel functional path.
 *
 * The hot-path primitives (AES block, CTR, GHASH, GCM seal) are
 * registered once per supported CryptoImpl so a single run compares
 * scalar vs ttable vs aesni rows directly.  A custom main() accepts
 * `--json FILE` as shorthand for google-benchmark's
 * `--benchmark_out=FILE --benchmark_out_format=json`, which is how
 * BENCH_crypto.json is produced.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/impl.hpp"
#include "crypto/ctr.hpp"
#include "crypto/gcm.hpp"
#include "crypto/ghash.hpp"
#include "crypto/sha256.hpp"
#include "crypto/chacha.hpp"
#include "crypto/xts.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"

namespace {

using namespace hcc;

void
BM_AesEncryptBlock(benchmark::State &state, crypto::CryptoImpl impl)
{
    std::vector<std::uint8_t> key(
        static_cast<std::size_t>(state.range(0)), 0x42);
    crypto::Aes aes(key, impl);
    std::uint8_t block[16] = {1, 2, 3};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}

void
BM_AesDecryptBlock(benchmark::State &state)
{
    std::vector<std::uint8_t> key(16, 0x17);
    crypto::Aes aes(key);
    std::uint8_t block[16] = {9, 8, 7};
    for (auto _ : state) {
        aes.decryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesDecryptBlock);

void
BM_GcmSeal(benchmark::State &state, crypto::CryptoImpl impl)
{
    std::vector<std::uint8_t> key(16, 0x33);
    crypto::AesGcm gcm(key, impl);
    std::vector<std::uint8_t> pt(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[crypto::kGcmTagLen];
    crypto::GcmIv iv{};
    for (auto _ : state) {
        gcm.seal(iv, {}, pt, ct, tag);
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}

void
BM_GcmOpen(benchmark::State &state)
{
    std::vector<std::uint8_t> key(16, 0x33);
    crypto::AesGcm gcm(key);
    std::vector<std::uint8_t> pt(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    std::vector<std::uint8_t> ct(pt.size());
    std::vector<std::uint8_t> back(pt.size());
    std::uint8_t tag[crypto::kGcmTagLen];
    crypto::GcmIv iv{};
    gcm.seal(iv, {}, pt, ct, tag);
    for (auto _ : state) {
        const bool ok = gcm.open(iv, {}, ct, tag, back);
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_GcmOpen)->Arg(65536);

void
BM_Ghash(benchmark::State &state, crypto::CryptoImpl impl)
{
    std::uint8_t h[16] = {0x66, 0xe9, 0x4b};
    crypto::Ghash ghash(h, impl);
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0x77);
    for (auto _ : state) {
        ghash.update(data);
        std::uint8_t out[16];
        ghash.digest(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}

void
BM_XtsEncrypt(benchmark::State &state)
{
    std::vector<std::uint8_t> key(32, 0x21);
    crypto::AesXts xts(key);
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0x99);
    for (auto _ : state) {
        xts.encrypt(7, data, data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_XtsEncrypt)->Arg(4096)->Arg(65536);

void
BM_CtrXcrypt(benchmark::State &state, crypto::CryptoImpl impl)
{
    std::vector<std::uint8_t> key(16, 0x44);
    crypto::Aes aes(key, impl);
    std::uint8_t ctr[16] = {};
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0x88);
    for (auto _ : state) {
        crypto::ctrXcrypt(aes, ctr, data, data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}

void
BM_ChaChaPolySeal(benchmark::State &state)
{
    std::vector<std::uint8_t> key(32, 0x42);
    crypto::ChaChaPoly aead(key);
    std::uint8_t nonce[12] = {1};
    std::vector<std::uint8_t> pt(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[crypto::kPolyTagLen];
    for (auto _ : state) {
        aead.seal(nonce, {}, pt, ct, tag);
        benchmark::DoNotOptimize(ct.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_ChaChaPolySeal)->Arg(65536)->Arg(1 << 20);

void
BM_Sha256(benchmark::State &state)
{
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(state.range(0)), 0x31);
    for (auto _ : state) {
        auto d = crypto::Sha256::digest(data);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(65536);

void
BM_SecureChannelFunctional(benchmark::State &state)
{
    tee::ChannelConfig cfg;
    cfg.crypto_workers = static_cast<int>(state.range(1));
    // Smaller than the default 4 MiB staging chunk so a 1 MiB
    // transfer splits into several chunks and the worker pool has
    // parallelism to exploit.
    cfg.chunk_bytes = 256 * 1024;
    const auto session = tee::SpdmSession::establish(5);
    tee::SecureChannel ch(cfg, session);
    std::vector<std::uint8_t> src(
        static_cast<std::size_t>(state.range(0)), 0xab);
    std::vector<std::uint8_t> dst(src.size());
    for (auto _ : state) {
        const bool ok = ch.transferFunctional(src, dst).ok();
        benchmark::DoNotOptimize(ok);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_SecureChannelFunctional)
    ->ArgNames({"bytes", "workers"})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4});

/** Register the per-implementation rows of the hot-path primitives. */
void
registerPerImplBenchmarks()
{
    for (const crypto::CryptoImpl impl :
         crypto::supportedCryptoImpls()) {
        const std::string suffix = crypto::cryptoImplName(impl);
        benchmark::RegisterBenchmark(
            ("BM_AesEncryptBlock/" + suffix).c_str(),
            [impl](benchmark::State &s) {
                BM_AesEncryptBlock(s, impl);
            })
            ->Arg(16)
            ->Arg(32);
        benchmark::RegisterBenchmark(
            ("BM_CtrXcrypt/" + suffix).c_str(),
            [impl](benchmark::State &s) { BM_CtrXcrypt(s, impl); })
            ->Arg(65536);
        benchmark::RegisterBenchmark(
            ("BM_Ghash/" + suffix).c_str(),
            [impl](benchmark::State &s) { BM_Ghash(s, impl); })
            ->Arg(65536);
        benchmark::RegisterBenchmark(
            ("BM_GcmSeal/" + suffix).c_str(),
            [impl](benchmark::State &s) { BM_GcmSeal(s, impl); })
            ->Arg(4096)
            ->Arg(65536)
            ->Arg(1 << 20);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Translate `--json FILE` / `--json=FILE` into google-benchmark's
    // native output flags before Initialize() sees the argv.
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        std::string file;
        if (a == "--json" && i + 1 < argc) {
            file = argv[++i];
        } else if (a.rfind("--json=", 0) == 0) {
            file = a.substr(7);
        } else {
            args.push_back(a);
            continue;
        }
        args.push_back("--benchmark_out=" + file);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (auto &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());

    registerPerImplBenchmarks();
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
