/**
 * @file
 * Ablation (Observation 2 / Sec. VIII): what if the CC transfer path
 * used a different cipher — or hardware TEE-IO?  Sweeps the bulk
 * algorithm in the SecureChannel and reports the achievable H2D
 * steady-state bandwidth and a 256 MiB transfer's latency, noting
 * the security trade-off of each choice.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "crypto/cpu_crypto_model.hpp"
#include "pcie/link.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace {

struct Choice
{
    const char *label;
    hcc::crypto::CipherAlgo algo;
    bool tee_io;
    const char *security;
};

} // namespace

int
main()
{
    using namespace hcc;
    using crypto::CipherAlgo;

    const Choice choices[] = {
        {"aes-gcm-128 (stock CC)", CipherAlgo::AesGcm128, false,
         "confidentiality + integrity"},
        {"aes-gcm-256", CipherAlgo::AesGcm256, false,
         "confidentiality + integrity (256b)"},
        {"ghash-only (GMAC)", CipherAlgo::GhashOnly, false,
         "integrity ONLY — plaintext on the bus"},
        {"aes-ctr-128", CipherAlgo::AesCtr128, false,
         "confidentiality ONLY — malleable"},
        {"chacha20-poly1305", CipherAlgo::ChaCha20Poly1305, false,
         "confidentiality + integrity"},
        {"TEE-IO / IDE (hardware)", CipherAlgo::AesGcm128, true,
         "confidentiality + integrity, needs new hw"},
    };

    // One independent channel simulation per cipher choice, run on
    // the sweep pool; results come back in input (row) order.
    constexpr std::size_t n = std::size(choices);
    std::vector<double> steady(n);
    std::vector<SimTime> latency(n);
    runIndexed(n, ThreadPool::defaultJobs(), [&](std::size_t i) {
        const auto &c = choices[i];
        tee::ChannelConfig cfg;
        cfg.algo = c.algo;
        cfg.tee_io = c.tee_io;
        const auto session = tee::SpdmSession::establish(3);
        tee::SecureChannel ch(cfg, session);
        pcie::PcieLink link;
        tee::TdxModule tdx(true);
        const auto timing = ch.scheduleTransfer(
            0, size::mib(256), pcie::Direction::HostToDevice, link,
            tdx);
        steady[i] = ch.steadyStateGbps(link);
        latency[i] = timing.total.duration();
    });

    TextTable t("Ablation — transfer-path cipher choice");
    t.header({"path", "steady GB/s", "256 MiB H2D", "security"});
    for (std::size_t i = 0; i < n; ++i) {
        t.row({choices[i].label, TextTable::num(steady[i], 2),
               formatTime(latency[i]), choices[i].security});
    }
    t.print(std::cout);
    std::cout << "\nPaper: faster algorithms trade away security "
                 "guarantees (Observation 2); TEE-IO needs hardware "
                 "replacement but restores near-line-rate.\n";
    return 0;
}
