/**
 * @file
 * Shared helpers for the figure-reproduction benches: run an app
 * under base/CC (x UVM) configurations and tabulate paper-style
 * ratios.
 */

#ifndef HCC_BENCH_BENCH_UTIL_HPP
#define HCC_BENCH_BENCH_UTIL_HPP

#include <string>
#include <vector>

#include "runtime/context.hpp"
#include "workloads/workload.hpp"

namespace hcc::bench {

/** Base (regular VM) system configuration. */
inline rt::SystemConfig
baseSystem(std::uint64_t seed = 1)
{
    rt::SystemConfig cfg;
    cfg.cc = false;
    cfg.seed = seed;
    return cfg;
}

/** CC (TD + CC-mode GPU) system configuration. */
inline rt::SystemConfig
ccSystem(std::uint64_t seed = 1)
{
    rt::SystemConfig cfg;
    cfg.cc = true;
    cfg.seed = seed;
    return cfg;
}

/** Paired base/CC results for one app. */
struct AppPair
{
    workloads::WorkloadResult base;
    workloads::WorkloadResult cc;
};

/** Run one app under base and CC with identical workload params. */
inline AppPair
runPair(const std::string &app, bool uvm = false,
        std::uint64_t seed = 1)
{
    workloads::WorkloadParams params;
    params.uvm = uvm;
    params.seed = seed;
    AppPair pair;
    pair.base = workloads::runWorkload(app, baseSystem(seed), params);
    pair.cc = workloads::runWorkload(app, ccSystem(seed), params);
    return pair;
}

/** Safe ratio helper (0 when the denominator is 0). */
inline double
ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

} // namespace hcc::bench

#endif // HCC_BENCH_BENCH_UTIL_HPP
