/**
 * @file
 * Ablation (Observation 7 / [107]): optimal launch-fusion level via
 * cudaGraph-style replay for an iterative app (3dconv-like), under
 * base and CC.  Sweeps the nodes-per-graph batching factor and
 * reports end-to-end time; the optimum shifts under CC because KLO
 * and first-launch costs scale differently.
 */

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "runtime/context.hpp"

namespace {

/** Replay 256 iterations of a 45us kernel, fused n-per-graph. */
hcc::SimTime
runBatched(bool cc, int per_graph)
{
    using namespace hcc;
    rt::Context ctx(cc ? bench::ccSystem() : bench::baseSystem());
    // Short kernels: the loop is launch-bound (low KLR), which is
    // where fusion matters (Observation 6/7).
    gpu::KernelDesc k{"iter_kernel", {}, time::us(5.0), 0, 0};
    const int total = 256;
    const SimTime start = ctx.now();
    if (per_graph <= 1) {
        for (int i = 0; i < total; ++i)
            ctx.launchKernel(k);
    } else {
        auto g = ctx.instantiateGraph(
            "batch", std::vector<gpu::KernelDesc>(
                         static_cast<std::size_t>(per_graph), k));
        for (int i = 0; i < total / per_graph; ++i)
            ctx.launchGraph(g);
    }
    ctx.deviceSynchronize();
    return ctx.now() - start;
}

} // namespace

int
main()
{
    using namespace hcc;

    // batching-factor x mode grid, run on the sweep pool; results
    // are indexed [factor][base, cc].
    const std::vector<int> factors = {1, 2, 4, 8, 16, 32, 64, 128,
                                      256};
    std::vector<SimTime> times(factors.size() * 2);
    runIndexed(times.size(), ThreadPool::defaultJobs(),
               [&](std::size_t i) {
                   times[i] = runBatched(i % 2 == 1, factors[i / 2]);
               });

    TextTable t("Ablation — graph batching factor for a 256-iteration "
                "kernel loop");
    t.header({"kernels/graph", "end-to-end(base)", "end-to-end(cc)",
              "cc/base"});
    SimTime best_base = 0, best_cc = 0;
    int best_base_n = 1, best_cc_n = 1;
    for (std::size_t f = 0; f < factors.size(); ++f) {
        const int n = factors[f];
        const SimTime b = times[f * 2];
        const SimTime c = times[f * 2 + 1];
        if (best_base == 0 || b < best_base) {
            best_base = b;
            best_base_n = n;
        }
        if (best_cc == 0 || c < best_cc) {
            best_cc = c;
            best_cc_n = n;
        }
        t.row({std::to_string(n), formatTime(b), formatTime(c),
               TextTable::ratio(static_cast<double>(c)
                                / static_cast<double>(b))});
    }
    t.print(std::cout);
    std::cout << "\nBest batching factor: base " << best_base_n
              << " (" << formatTime(best_base) << "), cc "
              << best_cc_n << " (" << formatTime(best_cc) << ")\n"
              << "Fusion pays off more under CC (higher per-launch "
                 "tax), but instantiation cost bounds the win — the "
                 "optimum is an interior point.\n";
    return 0;
}
