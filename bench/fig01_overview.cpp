/**
 * @file
 * Fig. 1: overview of end-to-end GPU application time under the
 * three settings the paper opens with — CC-off, CC-on, and CC-on
 * with UVM — for one representative copy-then-execute app, broken
 * into the performance-model parts.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "perfmodel/model.hpp"

namespace {

hcc::perfmodel::Decomposition
run(bool cc, bool uvm)
{
    using namespace hcc;
    workloads::WorkloadParams params;
    params.uvm = uvm;
    const auto res = workloads::runWorkload(
        "3dconv", cc ? bench::ccSystem() : bench::baseSystem(),
        params);
    return perfmodel::decompose(res.trace);
}

} // namespace

int
main()
{
    using namespace hcc;

    TextTable t("Fig. 1 — end-to-end time under the three settings "
                "(3dconv)");
    t.header({"setting", "alloc/free+sync", "copy", "launch+queue",
              "kernel", "total"});
    struct Row
    {
        const char *label;
        bool cc;
        bool uvm;
    };
    for (const Row r : {Row{"CC-off", false, false},
                        Row{"CC-on", true, false},
                        Row{"CC-on + UVM", true, true}}) {
        const auto d = run(r.cc, r.uvm);
        t.row({r.label, formatTime(d.t_other), formatTime(d.t_mem),
               formatTime(d.t_launch), formatTime(d.t_kernel),
               formatTime(d.end_to_end)});
    }
    t.print(std::cout);

    std::cout << "\nThe Fig. 1 story: under CC every part stretches "
                 "— allocation and freeing (TDX), data copies "
                 "(software encryption), launches and queuing "
                 "(hypercalls) — while kernel execution is unchanged "
                 "unless UVM turns it into encrypted paging, where "
                 "it explodes.\n";
    return 0;
}
