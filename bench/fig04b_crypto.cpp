/**
 * @file
 * Fig. 4b: single-core encryption/authentication throughput on the
 * two modeled CPUs (Intel EMR, NVIDIA Grace), alongside the actual
 * measured throughput of this library's functional (table-based,
 * non-AES-NI) implementations for reference.
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "crypto/cpu_crypto_model.hpp"
#include "crypto/gcm.hpp"
#include "crypto/xts.hpp"

namespace {

/** Wall-clock GB/s of the functional AES-GCM seal path. */
double
measureFunctionalGcm()
{
    using namespace hcc;
    std::vector<std::uint8_t> key(16, 0x42);
    crypto::AesGcm gcm(key);
    std::vector<std::uint8_t> pt(1 << 20, 0xa5);
    std::vector<std::uint8_t> ct(pt.size());
    std::uint8_t tag[crypto::kGcmTagLen];
    crypto::GcmIv iv{};

    const auto t0 = std::chrono::steady_clock::now();
    std::size_t total = 0;
    for (int i = 0; i < 32; ++i) {
        iv[0] = static_cast<std::uint8_t>(i);
        gcm.seal(iv, {}, pt, ct, tag);
        total += pt.size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(total) / secs / 1e9;
}

} // namespace

int
main()
{
    using namespace hcc;
    using crypto::CpuKind;

    TextTable t("Fig. 4b — single-core crypto throughput (GB/s)");
    t.header({"algorithm", "Intel EMR", "NVIDIA Grace"});
    crypto::CpuCryptoModel emr(CpuKind::IntelEmr);
    crypto::CpuCryptoModel grace(CpuKind::NvidiaGrace);
    for (auto algo : crypto::allCipherAlgos()) {
        t.row({crypto::cipherAlgoName(algo),
               TextTable::num(emr.throughputGBs(algo), 2),
               TextTable::num(grace.throughputGBs(algo), 2)});
    }
    t.print(std::cout);

    std::cout << "\nKey points (paper): AES-GCM-128 peaks at 3.36 "
                 "GB/s on EMR — below even the CC transfer demand; "
                 "GHASH-only (GMAC) reaches 8.9 GB/s at the cost of "
                 "confidentiality.\n";

    std::cout << "\nReference: this library's functional table-based "
                 "AES-GCM (no AES-NI) measures "
              << TextTable::num(measureFunctionalGcm(), 3)
              << " GB/s on this machine (simulation charges the "
                 "calibrated model instead).\n";
    return 0;
}
