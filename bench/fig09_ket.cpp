/**
 * @file
 * Fig. 9: kernel execution time (KET), normalized to the non-CC
 * non-UVM baseline, for all four configurations: base, CC, UVM and
 * CC-UVM (encrypted paging).
 */

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int
main()
{
    using namespace hcc;

    TextTable table(
        "Fig. 9 — total KET normalized to non-CC non-UVM");
    table.header({"app", "cc", "uvm", "cc-uvm"});

    std::vector<double> cc_r, uvm_r, ccuvm_r;
    for (const auto &app : workloads::evaluationApps()) {
        const auto pair = bench::runPair(app);
        const double base_ket = pair.base.metrics.ket.sum();
        const double cc_ket = pair.cc.metrics.ket.sum();
        const double cc_ratio = bench::ratio(cc_ket, base_ket);
        cc_r.push_back(cc_ratio);

        const auto *w = workloads::WorkloadRegistry::instance()
                            .find(app);
        std::string uvm_cell = "-", ccuvm_cell = "-";
        if (w != nullptr && w->supportsUvm()) {
            const auto upair = bench::runPair(app, /*uvm=*/true);
            const double u =
                bench::ratio(upair.base.metrics.ket.sum(), base_ket);
            const double cu =
                bench::ratio(upair.cc.metrics.ket.sum(), base_ket);
            uvm_r.push_back(u);
            ccuvm_r.push_back(cu);
            uvm_cell = TextTable::ratio(u);
            ccuvm_cell = TextTable::ratio(cu);
        }
        table.row({app, TextTable::ratio(cc_ratio), uvm_cell,
                   ccuvm_cell});
    }
    table.print(std::cout);

    double max_ccuvm = 0.0, min_ccuvm = 1e30;
    for (double r : ccuvm_r) {
        max_ccuvm = std::max(max_ccuvm, r);
        min_ccuvm = std::min(min_ccuvm, r);
    }
    std::cout << "\nSummary (paper: non-UVM CC +0.48%; UVM base "
                 "5.29x; CC-UVM avg 188.87x, range 1.08x-164030x)\n"
              << "  measured: non-UVM CC "
              << TextTable::pct((mean(cc_r) - 1.0) * 100.0, 2)
              << ", UVM base " << TextTable::ratio(geomean(uvm_r))
              << " (geomean), CC-UVM "
              << TextTable::ratio(geomean(ccuvm_r))
              << " (geomean), range " << TextTable::ratio(min_ccuvm)
              << " - " << TextTable::ratio(max_ccuvm) << "\n";
    return 0;
}
