/**
 * @file
 * Fig. 4a: host<->device transfer bandwidth vs transfer size
 * (64 B - 1 GB) for pageable and pinned memory, base vs CC.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"

namespace {

/** Measured bandwidth of one blocking copy. */
double
measure(bool cc, bool pinned, bool h2d, hcc::Bytes bytes)
{
    using namespace hcc;
    rt::Context ctx(cc ? bench::ccSystem() : bench::baseSystem());
    auto host = pinned ? ctx.mallocHost(bytes)
                       : ctx.hostPageable(bytes);
    auto dev = ctx.mallocDevice(bytes);
    const SimTime start = ctx.now();
    if (h2d)
        ctx.memcpy(dev, host, bytes);
    else
        ctx.memcpy(host, dev, bytes);
    const SimTime elapsed = ctx.now() - start;
    return bandwidthGBs(bytes, elapsed);
}

} // namespace

int
main()
{
    using namespace hcc;

    TextTable t("Fig. 4a — transfer bandwidth (GB/s) vs size");
    t.header({"size", "pageable-h2d", "pinned-h2d", "pageable-h2d(cc)",
              "pinned-h2d(cc)", "pinned-d2h", "pinned-d2h(cc)"});

    for (Bytes s = 64; s <= size::gib(1); s *= 4) {
        t.row({formatBytes(s),
               TextTable::num(measure(false, false, true, s), 3),
               TextTable::num(measure(false, true, true, s), 3),
               TextTable::num(measure(true, false, true, s), 3),
               TextTable::num(measure(true, true, true, s), 3),
               TextTable::num(measure(false, true, false, s), 3),
               TextTable::num(measure(true, true, false, s), 3)});
    }
    t.print(std::cout);

    const double pin_cc = measure(true, true, true, size::gib(1));
    const double page_cc = measure(true, false, true, size::gib(1));
    const double pin_base = measure(false, true, true, size::gib(1));
    std::cout << "\nSummary (paper: CC peak 3.03 GB/s pin-h2d; pinned "
                 "== pageable under CC; big pinned advantage in "
                 "base)\n"
              << "  measured @1GiB: pin-cc "
              << TextTable::num(pin_cc, 2) << ", pageable-cc "
              << TextTable::num(page_cc, 2) << ", pin-base "
              << TextTable::num(pin_base, 2) << " GB/s\n";
    return 0;
}
