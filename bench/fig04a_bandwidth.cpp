/**
 * @file
 * Fig. 4a: host<->device transfer bandwidth vs transfer size
 * (64 B - 1 GB) for pageable and pinned memory, base vs CC.
 */

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"

namespace {

/** One (mode, direction, size) point of the bandwidth grid. */
struct Point
{
    bool cc = false;
    bool pinned = false;
    bool h2d = true;
    hcc::Bytes bytes = 0;
};

/** Measured bandwidth of one blocking copy. */
double
measure(const Point &p)
{
    using namespace hcc;
    rt::Context ctx(p.cc ? bench::ccSystem() : bench::baseSystem());
    auto host = p.pinned ? ctx.mallocHost(p.bytes)
                         : ctx.hostPageable(p.bytes);
    auto dev = ctx.mallocDevice(p.bytes);
    const SimTime start = ctx.now();
    if (p.h2d)
        ctx.memcpy(dev, host, p.bytes);
    else
        ctx.memcpy(host, dev, p.bytes);
    const SimTime elapsed = ctx.now() - start;
    return bandwidthGBs(p.bytes, elapsed);
}

} // namespace

int
main()
{
    using namespace hcc;

    // Each point is an independent one-copy simulation: expand the
    // size x mode grid and run it on the sweep pool; results land in
    // input order so rows read off sequentially.
    std::vector<Point> points;
    for (Bytes s = 64; s <= size::gib(1); s *= 4) {
        points.push_back({false, false, true, s});
        points.push_back({false, true, true, s});
        points.push_back({true, false, true, s});
        points.push_back({true, true, true, s});
        points.push_back({false, true, false, s});
        points.push_back({true, true, false, s});
    }
    std::vector<double> gbs(points.size());
    runIndexed(points.size(), ThreadPool::defaultJobs(),
               [&](std::size_t i) { gbs[i] = measure(points[i]); });

    TextTable t("Fig. 4a — transfer bandwidth (GB/s) vs size");
    t.header({"size", "pageable-h2d", "pinned-h2d", "pageable-h2d(cc)",
              "pinned-h2d(cc)", "pinned-d2h", "pinned-d2h(cc)"});

    std::size_t next = 0;
    for (Bytes s = 64; s <= size::gib(1); s *= 4) {
        const double pageable_h2d = gbs[next++];
        const double pinned_h2d = gbs[next++];
        const double pageable_h2d_cc = gbs[next++];
        const double pinned_h2d_cc = gbs[next++];
        const double pinned_d2h = gbs[next++];
        const double pinned_d2h_cc = gbs[next++];
        t.row({formatBytes(s), TextTable::num(pageable_h2d, 3),
               TextTable::num(pinned_h2d, 3),
               TextTable::num(pageable_h2d_cc, 3),
               TextTable::num(pinned_h2d_cc, 3),
               TextTable::num(pinned_d2h, 3),
               TextTable::num(pinned_d2h_cc, 3)});
    }
    t.print(std::cout);

    // The summary points are the 1 GiB row's cells (deterministic
    // simulations: re-measuring would produce the same values).
    const double pin_cc = gbs[gbs.size() - 3];
    const double page_cc = gbs[gbs.size() - 4];
    const double pin_base = gbs[gbs.size() - 5];
    std::cout << "\nSummary (paper: CC peak 3.03 GB/s pin-h2d; pinned "
                 "== pageable under CC; big pinned advantage in "
                 "base)\n"
              << "  measured @1GiB: pin-cc "
              << TextTable::num(pin_cc, 2) << ", pageable-cc "
              << TextTable::num(page_cc, 2) << ", pin-base "
              << TextTable::num(pin_base, 2) << " GB/s\n";
    return 0;
}
