/**
 * @file
 * Fig. 3: the performance model.  Decomposes representative app
 * traces into the four parts (T_mem, sum(KLO+LQT), sum(KET+KQT),
 * T_other), estimates alpha/beta by interval intersection, and
 * validates the model's predicted end-to-end time against the
 * measured one under both base and CC.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "perfmodel/model.hpp"

int
main()
{
    using namespace hcc;

    const std::vector<std::string> apps = {"2mm", "3dconv", "sc",
                                           "hotspot", "gramschm",
                                           "kmeans"};

    TextTable t("Fig. 3 — performance-model decomposition and "
                "validation");
    t.header({"app", "mode", "T_mem", "B=KLO+LQT", "C=KET+KQT",
              "T_other", "alpha", "beta", "P meas", "P model",
              "err"});

    for (const auto &app : apps) {
        const auto pair = bench::runPair(app);
        for (const auto *res : {&pair.base, &pair.cc}) {
            const auto d = perfmodel::decompose(res->trace);
            t.row({app, res->cc ? "cc" : "base",
                   formatTime(d.t_mem), formatTime(d.t_launch),
                   formatTime(d.t_kernel), formatTime(d.t_other),
                   TextTable::num(d.alpha, 3),
                   TextTable::num(d.beta_mean, 3),
                   formatTime(d.end_to_end), formatTime(d.predicted),
                   TextTable::pct(d.relativeError() * 100.0)});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe model's prediction should track the measured "
                 "end-to-end time within a few percent; the residual "
                 "is host API time outside the four parts.\n";
    return 0;
}
