/**
 * @file
 * Fig. 5: time spent on copy operations (H2D/D2H/D2D) per app, base
 * vs CC.  Under CC, pinned-memory copies are reclassified as managed
 * D2D transfers (encrypted paging), exactly as Nsight reports them.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int
main()
{
    using namespace hcc;
    bench::AppPair pair;

    TextTable table(
        "Fig. 5 — copy time per app (ms), base vs CC (hatched)");
    table.header({"app", "h2d", "d2h", "d2d", "h2d(cc)", "d2h(cc)",
                  "d2d(cc)", "total(cc/base)"});

    std::vector<double> ratios;
    for (const auto &app : workloads::evaluationApps()) {
        pair = bench::runPair(app);
        const auto &b = pair.base.metrics;
        const auto &c = pair.cc.metrics;
        const double r = bench::ratio(
            static_cast<double>(c.copyTotal()),
            static_cast<double>(b.copyTotal()));
        ratios.push_back(r);
        table.row({app,
                   TextTable::num(time::toMs(b.copy_h2d), 3),
                   TextTable::num(time::toMs(b.copy_d2h), 3),
                   TextTable::num(time::toMs(b.copy_d2d), 3),
                   TextTable::num(time::toMs(c.copy_h2d), 3),
                   TextTable::num(time::toMs(c.copy_d2h), 3),
                   TextTable::num(time::toMs(c.copy_d2d), 3),
                   TextTable::ratio(r)});
    }
    table.print(std::cout);

    double max_r = 0.0, min_r = 1e30;
    for (double r : ratios) {
        max_r = std::max(max_r, r);
        min_r = std::min(min_r, r);
    }
    std::cout << "\nSummary (paper: avg 5.80x, max 19.69x @2dconv, "
                 "min 1.17x @cnn)\n"
              << "  measured: avg " << TextTable::ratio(geomean(ratios))
              << " (geomean), max " << TextTable::ratio(max_r)
              << ", min " << TextTable::ratio(min_r) << "\n";
    return 0;
}
