/**
 * @file
 * Fig. 14: Llama-3-8B serving throughput speedup of every
 * (backend, quant, CC) configuration over the HF | BF16 | CC-off
 * baseline at the same batch size.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "ml/llm.hpp"

namespace {

hcc::ml::LlmSweepCell
cell(hcc::ml::LlmBackend backend, hcc::ml::LlmQuant quant, int batch,
     bool cc)
{
    using namespace hcc;
    ml::LlmSweepCell c;
    c.sys = cc ? bench::ccSystem() : bench::baseSystem();
    c.config.backend = backend;
    c.config.quant = quant;
    c.config.batch = batch;
    return c;
}

} // namespace

int
main()
{
    using namespace hcc;
    using ml::LlmBackend;
    using ml::LlmQuant;

    const std::vector<int> batches = {1, 8, 16, 32, 64, 128};

    // Six configurations per batch size, expanded in row order and
    // run as one grid on the sweep pool (results in input order).
    std::vector<ml::LlmSweepCell> cells;
    for (int b : batches) {
        cells.push_back(
            cell(LlmBackend::HuggingFace, LlmQuant::Bf16, b, false));
        cells.push_back(
            cell(LlmBackend::Vllm, LlmQuant::Bf16, b, false));
        cells.push_back(
            cell(LlmBackend::Vllm, LlmQuant::Bf16, b, true));
        cells.push_back(
            cell(LlmBackend::Vllm, LlmQuant::Awq4, b, false));
        cells.push_back(
            cell(LlmBackend::Vllm, LlmQuant::Awq4, b, true));
        cells.push_back(
            cell(LlmBackend::HuggingFace, LlmQuant::Awq4, b, false));
    }
    const auto results =
        ml::runLlmSweep(cells, ThreadPool::defaultJobs());
    std::size_t next = 0;

    TextTable table(
        "Fig. 14 — vLLM speedup over HF|BF16|CC-off at same batch");
    table.header({"batch", "hf-bf16-ccoff(tok/s)", "vllm-bf16-ccoff",
                  "vllm-bf16-ccon", "vllm-awq-ccoff",
                  "vllm-awq-ccon", "hf-awq-ccoff/hf-bf16"});

    bool vllm_always_wins = true;
    bool ccon_worse = true;
    bool awq_wins_small = false, bf16_wins_large = true;

    for (int b : batches) {
        const double hf_bf16 = results[next++].tokens_per_s;
        const double v_bf16_off = results[next++].tokens_per_s;
        const double v_bf16_on = results[next++].tokens_per_s;
        const double v_awq_off = results[next++].tokens_per_s;
        const double v_awq_on = results[next++].tokens_per_s;
        const double hf_awq_off = results[next++].tokens_per_s;

        table.row({std::to_string(b),
                   TextTable::num(hf_bf16, 1),
                   TextTable::ratio(v_bf16_off / hf_bf16),
                   TextTable::ratio(v_bf16_on / hf_bf16),
                   TextTable::ratio(v_awq_off / hf_bf16),
                   TextTable::ratio(v_awq_on / hf_bf16),
                   TextTable::ratio(hf_awq_off / hf_bf16)});

        vllm_always_wins &= (v_bf16_off > hf_bf16)
            && (v_bf16_on > hf_bf16) && (v_awq_off > hf_awq_off);
        ccon_worse &= (v_bf16_on < v_bf16_off)
            && (v_awq_on < v_awq_off);
        if (b <= 16 && v_awq_off > v_bf16_off)
            awq_wins_small = true;
        if (b >= 64)
            bf16_wins_large &= (v_bf16_off > v_awq_off);
    }
    table.print(std::cout);

    std::cout << "\nSummary (paper: vLLM beats HF everywhere; CC-on "
                 "< CC-off; AWQ wins small batch, BF16 wins at "
                 "64/128)\n"
              << "  vLLM always faster: "
              << (vllm_always_wins ? "yes" : "NO") << "\n"
              << "  CC-on below CC-off: " << (ccon_worse ? "yes" : "NO")
              << "\n"
              << "  AWQ wins small batch: "
              << (awq_wins_small ? "yes" : "NO") << "\n"
              << "  BF16 wins at 64/128: "
              << (bf16_wins_large ? "yes" : "NO") << "\n";
    return 0;
}
