/**
 * @file
 * Fig. 14: Llama-3-8B serving throughput speedup of every
 * (backend, quant, CC) configuration over the HF | BF16 | CC-off
 * baseline at the same batch size.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "ml/llm.hpp"

namespace {

double
tput(hcc::ml::LlmBackend backend, hcc::ml::LlmQuant quant, int batch,
     bool cc)
{
    using namespace hcc;
    rt::Context ctx(cc ? bench::ccSystem() : bench::baseSystem());
    ml::LlmConfig cfg;
    cfg.backend = backend;
    cfg.quant = quant;
    cfg.batch = batch;
    return ml::serveLlm(ctx, cfg).tokens_per_s;
}

} // namespace

int
main()
{
    using namespace hcc;
    using ml::LlmBackend;
    using ml::LlmQuant;

    const std::vector<int> batches = {1, 8, 16, 32, 64, 128};

    TextTable table(
        "Fig. 14 — vLLM speedup over HF|BF16|CC-off at same batch");
    table.header({"batch", "hf-bf16-ccoff(tok/s)", "vllm-bf16-ccoff",
                  "vllm-bf16-ccon", "vllm-awq-ccoff",
                  "vllm-awq-ccon", "hf-awq-ccoff/hf-bf16"});

    bool vllm_always_wins = true;
    bool ccon_worse = true;
    bool awq_wins_small = false, bf16_wins_large = true;

    for (int b : batches) {
        const double hf_bf16 =
            tput(LlmBackend::HuggingFace, LlmQuant::Bf16, b, false);
        const double v_bf16_off =
            tput(LlmBackend::Vllm, LlmQuant::Bf16, b, false);
        const double v_bf16_on =
            tput(LlmBackend::Vllm, LlmQuant::Bf16, b, true);
        const double v_awq_off =
            tput(LlmBackend::Vllm, LlmQuant::Awq4, b, false);
        const double v_awq_on =
            tput(LlmBackend::Vllm, LlmQuant::Awq4, b, true);
        const double hf_awq_off =
            tput(LlmBackend::HuggingFace, LlmQuant::Awq4, b, false);

        table.row({std::to_string(b),
                   TextTable::num(hf_bf16, 1),
                   TextTable::ratio(v_bf16_off / hf_bf16),
                   TextTable::ratio(v_bf16_on / hf_bf16),
                   TextTable::ratio(v_awq_off / hf_bf16),
                   TextTable::ratio(v_awq_on / hf_bf16),
                   TextTable::ratio(hf_awq_off / hf_bf16)});

        vllm_always_wins &= (v_bf16_off > hf_bf16)
            && (v_bf16_on > hf_bf16) && (v_awq_off > hf_awq_off);
        ccon_worse &= (v_bf16_on < v_bf16_off)
            && (v_awq_on < v_awq_off);
        if (b <= 16 && v_awq_off > v_bf16_off)
            awq_wins_small = true;
        if (b >= 64)
            bf16_wins_large &= (v_bf16_off > v_awq_off);
    }
    table.print(std::cout);

    std::cout << "\nSummary (paper: vLLM beats HF everywhere; CC-on "
                 "< CC-off; AWQ wins small batch, BF16 wins at "
                 "64/128)\n"
              << "  vLLM always faster: "
              << (vllm_always_wins ? "yes" : "NO") << "\n"
              << "  CC-on below CC-off: " << (ccon_worse ? "yes" : "NO")
              << "\n"
              << "  AWQ wins small batch: "
              << (awq_wins_small ? "yes" : "NO") << "\n"
              << "  BF16 wins at 64/128: "
              << (bf16_wins_large ? "yes" : "NO") << "\n";
    return 0;
}
