/**
 * @file
 * Ablation (Sec. VIII / [83], [132]): multi-GPU communication under
 * CC.  With the GPU exclusively bound to a TD, P2P is unavailable
 * and every peer byte crosses the host encrypted twice; collectives
 * inherit the full tax.  Sweeps message size and GPU count for
 * peer copies, ring all-reduce and chain broadcast.
 */

#include <iostream>

#include "common/table.hpp"
#include "multigpu/multi_gpu.hpp"

namespace {

hcc::multigpu::MultiGpuSystem
make(bool cc, int gpus)
{
    hcc::multigpu::MultiGpuConfig cfg;
    cfg.cc = cc;
    cfg.gpus = gpus;
    return hcc::multigpu::MultiGpuSystem(cfg);
}

} // namespace

int
main()
{
    using namespace hcc;

    TextTable p("Peer copy GPU0 -> GPU1");
    p.header({"size", "base", "cc", "cc/base"});
    for (Bytes b : {size::mib(1), size::mib(16), size::mib(256)}) {
        auto base = make(false, 2);
        auto cc = make(true, 2);
        const auto tb = base.peerCopy(0, 1, b, 0);
        const auto tc = cc.peerCopy(0, 1, b, 0);
        p.row({formatBytes(b), formatTime(tb.total.duration()),
               formatTime(tc.total.duration()),
               TextTable::ratio(
                   static_cast<double>(tc.total.duration())
                   / static_cast<double>(tb.total.duration()))});
    }
    p.print(std::cout);

    TextTable a("Ring all-reduce, 64 MiB per GPU");
    a.header({"gpus", "base", "cc", "cc/base"});
    for (int n : {2, 4, 8}) {
        auto base = make(false, n);
        auto cc = make(true, n);
        const auto tb = base.allReduce(size::mib(64), 0);
        const auto tc = cc.allReduce(size::mib(64), 0);
        a.row({std::to_string(n), formatTime(tb.total.duration()),
               formatTime(tc.total.duration()),
               TextTable::ratio(
                   static_cast<double>(tc.total.duration())
                   / static_cast<double>(tb.total.duration()))});
    }
    a.print(std::cout);

    TextTable br("Chain broadcast, 64 MiB");
    br.header({"gpus", "base", "cc"});
    for (int n : {2, 4, 8}) {
        auto base = make(false, n);
        auto cc = make(true, n);
        br.row({std::to_string(n),
                formatTime(base.broadcast(size::mib(64), 0)
                               .total.duration()),
                formatTime(cc.broadcast(size::mib(64), 0)
                               .total.duration())});
    }
    br.print(std::cout);

    std::cout << "\nLosing P2P and paying software crypto in both "
                 "directions makes multi-GPU CC collectives an order "
                 "of magnitude slower — the motivation for the "
                 "batched-metadata multi-GPU TEE work ([83], [132]) "
                 "and TEE-IO.\n";
    return 0;
}
