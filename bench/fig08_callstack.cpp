/**
 * @file
 * Fig. 8: where the time inside a TD-mode cudaLaunchKernel goes.
 * The paper derives a flame graph with perf; we reconstruct the same
 * breakdown from the TDX module's accounting: hypercall round trips,
 * dma_direct_alloc, set_memory_decrypted, against total KLO.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"

namespace {

void
profileLaunches(bool cc)
{
    using namespace hcc;
    rt::Context ctx(cc ? bench::ccSystem() : bench::baseSystem());
    ctx.tdx().resetStats();

    gpu::KernelDesc k{"profiled_kernel", {}, time::us(50), 0, 0,
                      size::mib(2)};
    const int launches = 100;
    for (int i = 0; i < launches; ++i)
        ctx.launchKernel(k);
    ctx.deviceSynchronize();

    const auto m = trace::analyze(ctx.tracer());
    const auto &s = ctx.tdx().stats();

    std::cout << "\n-- cudaLaunchKernel call profile ("
              << (cc ? "TD / CC-on" : "regular VM") << ", "
              << launches << " launches) --\n";
    TextTable t;
    t.header({"frame", "count", "time", "share of sum(KLO)"});
    const auto total = static_cast<double>(m.sumKlo());
    auto row = [&](const char *name, std::uint64_t count,
                   SimTime time) {
        t.row({name, std::to_string(count), formatTime(time),
               TextTable::pct(100.0 * static_cast<double>(time)
                              / total)});
    };
    t.row({"cudaLaunchKernel -> ioctl -> nvidia_ioctl",
           std::to_string(launches), formatTime(m.sumKlo()), "100%"});
    if (cc) {
        row("  tdx_hypercall (incl. #VE MMIO doorbell)",
            s.hypercalls, s.hypercall_time);
        row("  dma_direct_alloc (bounce carve-out)", s.dma_allocs,
            s.dma_alloc_time);
        row("  set_memory_decrypted (page conversion)",
            s.pages_converted, s.page_convert_time);
        row("  seamcall (TDX module transitions)", s.seamcalls,
            s.seamcall_time);
    } else {
        // With VFIO passthrough the doorbell MMIO is direct-mapped:
        // no guest exits on the warm launch path.
        row("  vmexit (none: passthrough MMIO)", s.vmexits,
            s.vmexit_time);
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "Fig. 8 — simplified launch call-stack breakdown "
                 "(perf/flame-graph equivalent)\n";
    profileLaunches(false);
    profileLaunches(true);
    std::cout << "\nPaper: TDX-related frames (hypercalls, "
                 "dma_direct_alloc, set_memory_decrypted) appear "
                 "only in the TD profile and account for the KLO "
                 "increase; a tdx_hypercall costs >470% of a plain "
                 "vmcall.\n";
    return 0;
}
