/**
 * @file
 * google-benchmark suite over the simulation kernel and runtime hot
 * paths: timeline reservations, event-queue churn, full launch and
 * memcpy round trips (simulator throughput, i.e. how fast the
 * simulator itself runs).
 */

#include <benchmark/benchmark.h>

#include "ml/cnn.hpp"
#include "ml/llm.hpp"
#include "runtime/context.hpp"
#include "sim/event_queue.hpp"
#include "sim/timeline.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace hcc;

void
BM_TimelineReserve(benchmark::State &state)
{
    sim::Timeline t;
    SimTime ready = 0;
    for (auto _ : state) {
        const auto iv = t.reserve(ready, 100);
        ready = iv.end - 50;
        benchmark::DoNotOptimize(iv);
    }
}
BENCHMARK(BM_TimelineReserve);

void
BM_TimelinePoolReserve(benchmark::State &state)
{
    sim::TimelinePool pool("p", static_cast<int>(state.range(0)));
    SimTime ready = 0;
    for (auto _ : state) {
        const auto iv = pool.reserve(ready, 100);
        ready += 10;
        benchmark::DoNotOptimize(iv);
    }
}
BENCHMARK(BM_TimelinePoolReserve)->Arg(2)->Arg(16);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int acc = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(i, [&acc](SimTime) { ++acc; });
        q.runAll();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_KernelLaunch(benchmark::State &state)
{
    rt::SystemConfig cfg;
    cfg.cc = state.range(0) != 0;
    rt::Context ctx(cfg);
    gpu::KernelDesc k{"bench_kernel", {}, time::us(10), 0, 0};
    for (auto _ : state)
        ctx.launchKernel(k);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KernelLaunch)->Arg(0)->Arg(1);

void
BM_Memcpy(benchmark::State &state)
{
    rt::SystemConfig cfg;
    cfg.cc = state.range(0) != 0;
    rt::Context ctx(cfg);
    auto h = ctx.hostPageable(size::mib(1));
    auto d = ctx.mallocDevice(size::mib(1));
    for (auto _ : state)
        ctx.memcpy(d, h, size::mib(1));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Memcpy)->Arg(0)->Arg(1);

void
BM_FullWorkload(benchmark::State &state)
{
    const auto &w =
        workloads::WorkloadRegistry::instance().get("2mm");
    for (auto _ : state) {
        rt::SystemConfig cfg;
        cfg.cc = state.range(0) != 0;
        const auto r = workloads::runWorkload(w, cfg);
        benchmark::DoNotOptimize(r.end_to_end);
    }
}
BENCHMARK(BM_FullWorkload)->Arg(0)->Arg(1);

// The full large cells of the figure grids.  items/sec == simulator
// trace events per wall-clock second (the BENCH_sim.json headline):
// every launch/copy/sync of the serving or training loop records
// events through the whole runtime hot path, so this measures the
// end-to-end single-cell simulator throughput that bounds Fig. 13/14
// sweep latency.

void
BM_LlmDecodeCell(benchmark::State &state)
{
    // Fig. 14's slowest column: HF | BF16 (224 launches per decode
    // step x 64 steps) at batch 8.
    ml::LlmConfig lc;
    lc.backend = ml::LlmBackend::HuggingFace;
    lc.quant = ml::LlmQuant::Bf16;
    lc.batch = 8;
    std::int64_t events = 0;
    for (auto _ : state) {
        rt::SystemConfig cfg;
        cfg.cc = state.range(0) != 0;
        rt::Context ctx(cfg);
        const auto r = ml::serveLlm(ctx, lc);
        benchmark::DoNotOptimize(r.tokens_per_s);
        events += static_cast<std::int64_t>(ctx.tracer().size());
    }
    state.SetItemsProcessed(events);
}
BENCHMARK(BM_LlmDecodeCell)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_CnnTrainCell(benchmark::State &state)
{
    // Fig. 13's heaviest row: VGG16 FP32 at batch 64.
    ml::CnnTrainConfig cc;
    cc.model = ml::CnnModel::Vgg16;
    cc.batch_size = 64;
    cc.precision = ml::Precision::Fp32;
    std::int64_t events = 0;
    for (auto _ : state) {
        rt::SystemConfig cfg;
        cfg.cc = state.range(0) != 0;
        rt::Context ctx(cfg);
        const auto r = ml::trainCnn(ctx, cc);
        benchmark::DoNotOptimize(r.throughput);
        events += static_cast<std::int64_t>(ctx.tracer().size());
    }
    state.SetItemsProcessed(events);
}
BENCHMARK(BM_CnnTrainCell)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
