/**
 * @file
 * Fig. 11: CDFs of (a) kernel launch durations (KLO) and (b) kernel
 * execution times (KET), pooled over the evaluation apps, base vs
 * CC.  Following the paper, the top 5 longest launches are removed
 * from the plotted CDF (means are computed over all points).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

void
printCdf(const char *title, const hcc::SampleSet &base,
         const hcc::SampleSet &cc, std::size_t drop_top)
{
    using namespace hcc;
    std::cout << "\n-- " << title << " --\n";
    TextTable t;
    t.header({"percentile", "base (us)", "cc (us)"});
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
        t.row({TextTable::num(p, 0),
               TextTable::num(time::toUs(base.percentile(p)), 2),
               TextTable::num(time::toUs(cc.percentile(p)), 2)});
    }
    t.print(std::cout);
    std::cout << "  mean: base "
              << TextTable::num(time::toUs(base.mean()), 2)
              << " us, cc " << TextTable::num(time::toUs(cc.mean()), 2)
              << " us (over all points)\n";
    const auto b = base.cdf(drop_top);
    const auto c = cc.cdf(drop_top);
    std::cout << "  plotted points after dropping top " << drop_top
              << ": base " << b.size() << ", cc " << c.size() << "\n";
}

} // namespace

int
main()
{
    using namespace hcc;

    SampleSet klo_base, klo_cc, ket_base, ket_cc;
    for (const auto &app : workloads::evaluationApps()) {
        const auto pair = bench::runPair(app);
        klo_base.addAll(pair.base.metrics.klo.values());
        klo_cc.addAll(pair.cc.metrics.klo.values());
        ket_base.addAll(pair.base.metrics.ket.values());
        ket_cc.addAll(pair.cc.metrics.ket.values());
    }

    printCdf("Fig. 11a — KLO CDF (top 5 launches dropped)", klo_base,
             klo_cc, 5);
    printCdf("Fig. 11b — KET CDF", ket_base, ket_cc, 0);

    std::cout << "\nPaper: the CC KLO distribution shifts right with "
                 "a heavier tail; the KET distributions are nearly "
                 "identical (non-UVM kernels unaffected by CC).\n"
              << "  measured KLO mean shift: "
              << TextTable::ratio(klo_cc.mean() / klo_base.mean())
              << "; KET mean shift: "
              << TextTable::ratio(ket_cc.mean() / ket_base.mean())
              << "\n";
    return 0;
}
