/**
 * @file
 * Table I: the modeled confidential-computing system setup, plus the
 * derived simulator parameters (calibration constants in effect).
 */

#include <iostream>

#include "common/calibration.hpp"
#include "common/table.hpp"
#include "tee/spdm.hpp"

int
main()
{
    using namespace hcc;

    TextTable t("Table I — Confidential Computing System Setup "
                "(modeled)");
    t.header({"Component", "Configuration"});
    t.row({"CPU", "2x 5th Gen Intel Xeon 6530 Gold @2.1GHz, 32 cores"});
    t.row({"Memory", "16x 64GB DDR5 4800MHz (1TB)"});
    t.row({"TME-MK", "Auto bypass enabled (AES-XTS, key-id 0 clear)"});
    t.row({"System", "Supermicro SYS-421GE-TNRT3 (PCIe 5.0)"});
    t.row({"OS", "Ubuntu 22.04.5 LTS (Linux 6.2.0, tdx patched)"});
    t.row({"Hypervisor", "QEMU 7.2.0 (tdx patched)"});
    t.row({"TDX Tools", "TDX 1.5 (tag 2023ww15)"});
    t.row({"GPU", "NVIDIA H100 NVL, 94GB HBM3, PCIe 5.0 x16"});
    t.row({"", "CUDA 12.4-equivalent runtime model"});
    t.print(std::cout);

    TextTable c("Derived simulator calibration (selected)");
    c.header({"Parameter", "Value"});
    c.row({"PCIe pinned bandwidth (base)",
           TextTable::num(calib::kPciePinnedGBs, 1) + " GB/s"});
    c.row({"AES-GCM-128 single core (EMR)",
           TextTable::num(calib::kEmrAesGcm128GBs, 2) + " GB/s"});
    c.row({"tdx_hypercall round trip",
           formatTime(calib::kTdxHypercallLatency)});
    c.row({"vmcall round trip", formatTime(calib::kVmcallLatency)});
    c.row({"set_memory_decrypted / 4KiB page",
           formatTime(calib::kPageConvertPerPage)});
    c.row({"UVM far-fault latency",
           formatTime(calib::kUvmFaultLatencyBase)});
    c.row({"UVM batch pages (base / CC)",
           std::to_string(calib::kUvmBatchPagesBase) + " / "
               + std::to_string(calib::kUvmBatchPagesCc)});
    c.row({"cmd decode (base / CC)",
           formatTime(calib::kCmdProcDecodeBase) + " / "
               + formatTime(calib::kCmdProcDecodeCc)});
    c.row({"SPDM handshake (one-time)",
           formatTime(tee::SpdmSession::kHandshakeCost)});
    c.print(std::cout);
    return 0;
}
