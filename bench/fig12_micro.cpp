/**
 * @file
 * Fig. 12: microbenchmark studies (Sec. VII-A).
 *   (a) per-launch KLO across 100 launches of K0 then K1;
 *   (b) fusion sweep: fixed total KET split over 1..256 launches;
 *   (c) overlapping: 1..64 streams, 512MB/1GB, KET 1ms/100ms.
 * Triangle = base, square = CC in the paper's plots.
 */

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "workloads/micro.hpp"

int
main()
{
    using namespace hcc;
    using namespace hcc::workloads;

    // ------------------------------------------------------- 12a
    std::cout << "-- Fig. 12a: KLO vs launch index (100x K0 then "
                 "100x K1) --\n";
    for (bool cc : {false, true}) {
        const auto r = runLaunchIndexMicro(cc, 100);
        auto show = [&](const char *name,
                        const std::vector<SimTime> &klo) {
            std::cout << (cc ? "  cc   " : "  base ") << name << ":";
            for (std::size_t i : {0u, 1u, 2u, 4u, 9u, 49u, 99u}) {
                std::cout << " [" << i << "]="
                          << TextTable::num(time::toUs(
                                 static_cast<double>(klo[i])), 1);
            }
            std::cout << " us\n";
        };
        show("K0", r.k0_klo);
        show("K1", r.k1_klo);
    }
    std::cout << "  (first launches of each new kernel spike; "
                 "subsequent launches settle)\n";

    // ------------------------------------------------------- 12b
    std::cout << "\n-- Fig. 12b: fusion sweep (total KET fixed at "
                 "200 ms) --\n";
    TextTable t;
    t.header({"launches", "sum KLO", "sum LQT", "end-to-end",
              "sum KLO(cc)", "sum LQT(cc)", "end-to-end(cc)"});
    const std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    const auto base_pts = runFusionSweep(false, time::ms(200.0),
                                         counts);
    const auto cc_pts = runFusionSweep(true, time::ms(200.0), counts);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        t.row({std::to_string(counts[i]),
               formatTime(base_pts[i].sum_klo),
               formatTime(base_pts[i].sum_lqt),
               formatTime(base_pts[i].end_to_end),
               formatTime(cc_pts[i].sum_klo),
               formatTime(cc_pts[i].sum_lqt),
               formatTime(cc_pts[i].end_to_end)});
    }
    t.print(std::cout);
    std::cout << "  (KLO grows with launch count while the fully "
                 "fused single launch pays the first-launch spike: "
                 "the optimum is in between — Observation 7)\n";

    // ------------------------------------------------------- 12c
    std::cout << "\n-- Fig. 12c: overlap efficiency vs streams --\n";
    TextTable o;
    o.header({"streams", "bytes", "KET", "alpha(base)", "alpha(cc)",
              "time(base)", "time(cc)"});
    for (Bytes total : {size::mib(512), size::gib(1)}) {
        for (SimTime ket : {time::ms(1.0), time::ms(100.0)}) {
            for (int s : {1, 2, 4, 8, 16, 32, 64}) {
                const auto b = runOverlapMicro(false, s, total, ket);
                const auto c = runOverlapMicro(true, s, total, ket);
                o.row({std::to_string(s), formatBytes(total),
                       formatTime(ket), TextTable::num(b.alpha, 2),
                       TextTable::num(c.alpha, 2),
                       formatTime(b.end_to_end),
                       formatTime(c.end_to_end)});
            }
        }
    }
    o.print(std::cout);
    std::cout << "  (overlap is harder under CC and with short KETs; "
                 "raising the compute-to-IO ratio restores it — "
                 "Observation 8)\n";
    return 0;
}
