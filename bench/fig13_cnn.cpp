/**
 * @file
 * Fig. 13: CNN training throughput and training time for six models,
 * batch sizes 64 and 1024, FP32/AMP (+FP16 at 1024), base vs CC.
 * Training time is normalized to the non-CC FP32 time at the same
 * batch size, as in the paper.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "ml/cnn.hpp"

namespace {

hcc::ml::CnnSweepCell
cell(hcc::ml::CnnModel model, int batch, hcc::ml::Precision prec,
     bool cc)
{
    using namespace hcc;
    ml::CnnSweepCell c;
    c.sys = cc ? bench::ccSystem() : bench::baseSystem();
    c.config.model = model;
    c.config.batch_size = batch;
    c.config.precision = prec;
    return c;
}

} // namespace

int
main()
{
    using namespace hcc;
    using ml::Precision;

    // The whole figure is a grid — batch x model x precision x CC —
    // of independent simulations, so expand it up front and run the
    // cells on the sweep pool.  Results come back in input order.
    const std::vector<int> batches = {64, 1024};
    const std::vector<Precision> precisions = {
        Precision::Fp32, Precision::Amp, Precision::Fp16};
    std::vector<ml::CnnSweepCell> cells;
    for (int batch : batches)
        for (auto model : ml::allCnnModels())
            for (auto prec : precisions)
                for (bool cc : {false, true})
                    cells.push_back(cell(model, batch, prec, cc));
    const auto results =
        ml::runCnnSweep(cells, ThreadPool::defaultJobs());
    std::size_t next = 0;

    std::vector<double> drop64, drop1024, amp64_delta, fp16_gain;

    for (int batch : {64, 1024}) {
        TextTable table("Fig. 13 — batch " + std::to_string(batch)
                        + " (throughput img/s; time normalized to "
                          "non-CC FP32)");
        table.header({"model", "fp32", "fp32(cc)", "amp", "amp(cc)",
                      "fp16", "fp16(cc)", "time-fp32cc", "time-ampcc",
                      "time-fp16cc"});
        for (auto model : ml::allCnnModels()) {
            const auto &fp32 = results[next++];
            const auto &fp32cc = results[next++];
            const auto &amp = results[next++];
            const auto &ampcc = results[next++];
            const auto &fp16 = results[next++];
            const auto &fp16cc = results[next++];

            const double norm =
                static_cast<double>(fp32.train_time_200_epochs);
            table.row({ml::cnnModelName(model),
                       TextTable::num(fp32.throughput, 0),
                       TextTable::num(fp32cc.throughput, 0),
                       TextTable::num(amp.throughput, 0),
                       TextTable::num(ampcc.throughput, 0),
                       TextTable::num(fp16.throughput, 0),
                       TextTable::num(fp16cc.throughput, 0),
                       TextTable::ratio(
                           fp32cc.train_time_200_epochs / norm),
                       TextTable::ratio(
                           ampcc.train_time_200_epochs / norm),
                       TextTable::ratio(
                           fp16cc.train_time_200_epochs / norm)});

            const double drop =
                1.0 - fp32cc.throughput / fp32.throughput;
            (batch == 64 ? drop64 : drop1024).push_back(drop);
            if (batch == 64) {
                amp64_delta.push_back(
                    1.0 - ampcc.throughput / fp32cc.throughput);
            } else {
                fp16_gain.push_back(
                    1.0 - static_cast<double>(
                              fp16cc.train_time_200_epochs)
                        / static_cast<double>(
                              ampcc.train_time_200_epochs));
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Summary (paper: b64 CC throughput -24% avg; b1024 "
                 "-7.3% avg; AMP@64 hurts under CC; FP16@1024 cuts "
                 "training time 27.7% avg)\n"
              << "  measured: b64 " << TextTable::pct(
                     mean(drop64) * 100.0)
              << ", b1024 " << TextTable::pct(mean(drop1024) * 100.0)
              << ", AMP@64 extra loss " << TextTable::pct(
                     mean(amp64_delta) * 100.0)
              << ", FP16@1024 time cut vs AMP "
              << TextTable::pct(mean(fp16_gain) * 100.0) << "\n";
    return 0;
}
