/**
 * @file
 * Fig. 13: CNN training throughput and training time for six models,
 * batch sizes 64 and 1024, FP32/AMP (+FP16 at 1024), base vs CC.
 * Training time is normalized to the non-CC FP32 time at the same
 * batch size, as in the paper.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ml/cnn.hpp"

namespace {

hcc::ml::CnnTrainResult
run(hcc::ml::CnnModel model, int batch, hcc::ml::Precision prec,
    bool cc)
{
    using namespace hcc;
    rt::Context ctx(cc ? bench::ccSystem() : bench::baseSystem());
    ml::CnnTrainConfig cfg;
    cfg.model = model;
    cfg.batch_size = batch;
    cfg.precision = prec;
    return ml::trainCnn(ctx, cfg);
}

} // namespace

int
main()
{
    using namespace hcc;
    using ml::Precision;

    std::vector<double> drop64, drop1024, amp64_delta, fp16_gain;

    for (int batch : {64, 1024}) {
        TextTable table("Fig. 13 — batch " + std::to_string(batch)
                        + " (throughput img/s; time normalized to "
                          "non-CC FP32)");
        table.header({"model", "fp32", "fp32(cc)", "amp", "amp(cc)",
                      "fp16", "fp16(cc)", "time-fp32cc", "time-ampcc",
                      "time-fp16cc"});
        for (auto model : ml::allCnnModels()) {
            const auto fp32 = run(model, batch, Precision::Fp32,
                                  false);
            const auto fp32cc = run(model, batch, Precision::Fp32,
                                    true);
            const auto amp = run(model, batch, Precision::Amp, false);
            const auto ampcc = run(model, batch, Precision::Amp,
                                   true);
            const auto fp16 = run(model, batch, Precision::Fp16,
                                  false);
            const auto fp16cc = run(model, batch, Precision::Fp16,
                                    true);

            const double norm =
                static_cast<double>(fp32.train_time_200_epochs);
            table.row({ml::cnnModelName(model),
                       TextTable::num(fp32.throughput, 0),
                       TextTable::num(fp32cc.throughput, 0),
                       TextTable::num(amp.throughput, 0),
                       TextTable::num(ampcc.throughput, 0),
                       TextTable::num(fp16.throughput, 0),
                       TextTable::num(fp16cc.throughput, 0),
                       TextTable::ratio(
                           fp32cc.train_time_200_epochs / norm),
                       TextTable::ratio(
                           ampcc.train_time_200_epochs / norm),
                       TextTable::ratio(
                           fp16cc.train_time_200_epochs / norm)});

            const double drop =
                1.0 - fp32cc.throughput / fp32.throughput;
            (batch == 64 ? drop64 : drop1024).push_back(drop);
            if (batch == 64) {
                amp64_delta.push_back(
                    1.0 - ampcc.throughput / fp32cc.throughput);
            } else {
                fp16_gain.push_back(
                    1.0 - static_cast<double>(
                              fp16cc.train_time_200_epochs)
                        / static_cast<double>(
                              ampcc.train_time_200_epochs));
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Summary (paper: b64 CC throughput -24% avg; b1024 "
                 "-7.3% avg; AMP@64 hurts under CC; FP16@1024 cuts "
                 "training time 27.7% avg)\n"
              << "  measured: b64 " << TextTable::pct(
                     mean(drop64) * 100.0)
              << ", b1024 " << TextTable::pct(mean(drop1024) * 100.0)
              << ", AMP@64 extra loss " << TextTable::pct(
                     mean(amp64_delta) * 100.0)
              << ", FP16@1024 time cut vs AMP "
              << TextTable::pct(mean(fp16_gain) * 100.0) << "\n";
    return 0;
}
