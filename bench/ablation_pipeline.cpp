/**
 * @file
 * Ablation (Sec. VIII, PipeLLM/Tan et al. [19][125]): parallelizing
 * the software encryption with multiple worker threads, and varying
 * the bounce-buffer chunk size.  Reports the CC H2D steady-state
 * bandwidth as both sweep dimensions move.
 */

#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "pcie/link.hpp"
#include "tee/secure_channel.hpp"
#include "tee/spdm.hpp"
#include "tee/tdx.hpp"

namespace {

double
bandwidth(int workers, hcc::Bytes chunk)
{
    using namespace hcc;
    tee::ChannelConfig cfg;
    cfg.crypto_workers = workers;
    cfg.chunk_bytes = chunk;
    const auto session = tee::SpdmSession::establish(9);
    tee::SecureChannel ch(cfg, session);
    pcie::PcieLink link;
    tee::TdxModule tdx(true);
    const Bytes total = size::gib(1);
    const auto t = ch.scheduleTransfer(
        0, total, pcie::Direction::HostToDevice, link, tdx);
    return bandwidthGBs(total, t.total.duration());
}

} // namespace

int
main()
{
    using namespace hcc;

    // workers x chunk grid of independent channel simulations — run
    // the cells on the sweep pool, read results back in input order.
    const std::vector<int> workers = {1, 2, 4, 8, 16};
    const std::vector<Bytes> chunks = {size::kib(256), size::mib(1),
                                       size::mib(4), size::mib(16)};
    std::vector<double> gbs(workers.size() * chunks.size());
    runIndexed(gbs.size(), ThreadPool::defaultJobs(),
               [&](std::size_t i) {
                   gbs[i] = bandwidth(workers[i / chunks.size()],
                                      chunks[i % chunks.size()]);
               });

    TextTable t("Ablation — parallel encryption workers x chunk size "
                "(1 GiB H2D, GB/s)");
    t.header({"workers", "256KiB", "1MiB", "4MiB", "16MiB"});
    for (std::size_t w = 0; w < workers.size(); ++w) {
        t.row({std::to_string(workers[w]),
               TextTable::num(gbs[w * chunks.size() + 0], 2),
               TextTable::num(gbs[w * chunks.size() + 1], 2),
               TextTable::num(gbs[w * chunks.size() + 2], 2),
               TextTable::num(gbs[w * chunks.size() + 3], 2)});
    }
    t.print(std::cout);
    std::cout << "\nOne worker pins the path at ~3 GB/s (the paper's "
                 "measurement); 8+ workers saturate the PCIe link, "
                 "matching the PipeLLM-style optimization's promise. "
                 "Small chunks lose to per-chunk setup; big chunks "
                 "lose pipeline fill.\n";
    return 0;
}
