/**
 * @file
 * Fig. 6: time spent on memory allocation and deallocation
 * (cudaMallocHost, cudaMalloc, cudaFree) per app, base vs CC, plus
 * the managed-memory comparison from Sec. VI-A.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/context.hpp"

namespace {

/** Microbenchmark one alloc/free pair at a given size. */
struct AllocTimes
{
    double dmalloc = 0, hmalloc = 0, dfree = 0;
    double m_alloc = 0, m_free = 0;
};

AllocTimes
probe(bool cc, hcc::Bytes bytes)
{
    using namespace hcc;
    rt::Context ctx(cc ? bench::ccSystem() : bench::baseSystem());
    AllocTimes t;
    SimTime a = ctx.now();
    auto d = ctx.mallocDevice(bytes);
    t.dmalloc = time::toUs(ctx.now() - a);
    a = ctx.now();
    auto h = ctx.mallocHost(bytes);
    t.hmalloc = time::toUs(ctx.now() - a);
    a = ctx.now();
    ctx.free(d);
    t.dfree = time::toUs(ctx.now() - a);
    ctx.free(h);
    a = ctx.now();
    auto m = ctx.mallocManaged(bytes);
    t.m_alloc = time::toUs(ctx.now() - a);
    a = ctx.now();
    ctx.free(m);
    t.m_free = time::toUs(ctx.now() - a);
    return t;
}

} // namespace

int
main()
{
    using namespace hcc;

    // Per-app alloc/free totals (as Fig. 6 plots them).
    TextTable t("Fig. 6 — alloc/dealloc time per app (ms), "
                "base vs CC");
    t.header({"app", "Hmalloc", "Dmalloc", "Free", "Hmalloc(cc)",
              "Dmalloc(cc)", "Free(cc)"});
    std::vector<double> d_r, h_r, f_r;
    for (const auto &app : workloads::evaluationApps()) {
        const auto pair = bench::runPair(app);
        const auto &b = pair.base.metrics;
        const auto &c = pair.cc.metrics;
        t.row({app, TextTable::num(time::toMs(b.alloc_host), 3),
               TextTable::num(time::toMs(b.alloc_device), 3),
               TextTable::num(time::toMs(b.free_time), 3),
               TextTable::num(time::toMs(c.alloc_host), 3),
               TextTable::num(time::toMs(c.alloc_device), 3),
               TextTable::num(time::toMs(c.free_time), 3)});
        if (b.alloc_device > 0) {
            d_r.push_back(bench::ratio(
                static_cast<double>(c.alloc_device),
                static_cast<double>(b.alloc_device)));
        }
        if (b.alloc_host > 0) {
            h_r.push_back(
                bench::ratio(static_cast<double>(c.alloc_host),
                             static_cast<double>(b.alloc_host)));
        }
        if (b.free_time > 0) {
            f_r.push_back(
                bench::ratio(static_cast<double>(c.free_time),
                             static_cast<double>(b.free_time)));
        }
    }
    t.print(std::cout);

    // API-level microbenchmark (the paper's headline multipliers).
    const Bytes sz = size::mib(64);
    const auto base = probe(false, sz);
    const auto cc = probe(true, sz);

    std::cout << "\nAPI microbenchmark @64 MiB (paper: Dmalloc "
                 "5.67x, Hmalloc 5.72x, Free 10.54x; managed alloc "
                 "5.43x, managed free 3.35x; non-CC managed alloc "
                 "0.51x of Dmalloc, managed free 3.13x of Free; "
                 "CC-UVM free 18.20x of base Free)\n";
    TextTable m("measured");
    m.header({"metric", "base(us)", "cc(us)", "ratio"});
    auto row = [&](const char *name, double b, double c) {
        m.row({name, TextTable::num(b, 1), TextTable::num(c, 1),
               TextTable::ratio(c / b)});
    };
    row("cudaMalloc", base.dmalloc, cc.dmalloc);
    row("cudaMallocHost", base.hmalloc, cc.hmalloc);
    row("cudaFree", base.dfree, cc.dfree);
    row("cudaMallocManaged", base.m_alloc, cc.m_alloc);
    row("managed cudaFree", base.m_free, cc.m_free);
    m.print(std::cout);
    std::cout << "  managed/base alloc (non-CC): "
              << TextTable::ratio(base.m_alloc / base.dmalloc)
              << "; managed/base free (non-CC): "
              << TextTable::ratio(base.m_free / base.dfree)
              << "; CC managed free / base free: "
              << TextTable::ratio(cc.m_free / base.dfree) << "\n"
              << "  per-app ratios: Dmalloc "
              << TextTable::ratio(mean(d_r)) << ", Hmalloc "
              << (h_r.empty() ? std::string("-")
                              : TextTable::ratio(mean(h_r)))
              << ", Free " << TextTable::ratio(mean(f_r)) << "\n";
    return 0;
}
