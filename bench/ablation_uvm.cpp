/**
 * @file
 * Ablation: why encrypted paging is catastrophic — sweep the
 * CC fault-batch size (prefetch effectiveness) and show the UVM KET
 * amplification collapsing as batching is restored, plus the cost of
 * oversubscription thrash under CC.
 */

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "runtime/context.hpp"
#include "trace/analysis.hpp"

namespace {

using namespace hcc;

/** Total KET of a UVM kernel touching 64 MiB, given batch pages. */
SimTime
uvmKet(bool cc, int cc_batch_pages)
{
    rt::SystemConfig cfg = cc ? bench::ccSystem()
                              : bench::baseSystem();
    cfg.gpu.uvm.batch_pages_cc = cc_batch_pages;
    rt::Context ctx(cfg);
    auto m = ctx.mallocManaged(size::mib(64));
    gpu::KernelDesc k{"uvm_kernel", {}, time::us(200.0),
                      size::mib(64), m.uvm_handle};
    ctx.launchKernel(k);
    ctx.deviceSynchronize();
    const auto metrics = trace::analyze(ctx.tracer());
    return metrics.sumKet();
}

/** End-to-end of an oversubscribed ping-pong between two regions. */
SimTime
thrash(bool cc)
{
    rt::SystemConfig cfg = cc ? bench::ccSystem()
                              : bench::baseSystem();
    cfg.gpu.uvm.device_capacity = size::mib(48);
    rt::Context ctx(cfg);
    auto a = ctx.mallocManaged(size::mib(32));
    auto b = ctx.mallocManaged(size::mib(32));
    const SimTime start = ctx.now();
    for (int i = 0; i < 4; ++i) {
        gpu::KernelDesc ka{"ping", {}, time::us(100.0), size::mib(32),
                           a.uvm_handle};
        ctx.launchKernel(ka);
        gpu::KernelDesc kb{"pong", {}, time::us(100.0), size::mib(32),
                           b.uvm_handle};
        ctx.launchKernel(kb);
    }
    ctx.deviceSynchronize();
    return ctx.now() - start;
}

} // namespace

int
main()
{
    using namespace hcc;

    // The batch-size sweep, the non-CC baseline and both thrash
    // runs are independent simulations — one grid on the sweep pool.
    const std::vector<int> batch_pages = {1, 2, 4, 8, 16, 32, 64};
    std::vector<SimTime> ket(batch_pages.size() + 1);
    SimTime thrash_base = 0, thrash_cc = 0;
    runIndexed(ket.size() + 2, ThreadPool::defaultJobs(),
               [&](std::size_t i) {
                   if (i < batch_pages.size())
                       ket[i] = uvmKet(true, batch_pages[i]);
                   else if (i == batch_pages.size())
                       ket[i] = uvmKet(false,
                                       calib::kUvmBatchPagesCc);
                   else if (i == batch_pages.size() + 1)
                       thrash_base = thrash(false);
                   else
                       thrash_cc = thrash(true);
               });
    const SimTime base = ket[batch_pages.size()];

    TextTable t("Ablation — CC fault-batch size vs UVM KET "
                "(64 MiB touch, KET normalized to non-CC UVM)");
    t.header({"cc batch pages", "KET", "vs non-CC UVM"});
    for (std::size_t i = 0; i < batch_pages.size(); ++i) {
        t.row({std::to_string(batch_pages[i]), formatTime(ket[i]),
               TextTable::ratio(static_cast<double>(ket[i])
                                / static_cast<double>(base))});
    }
    t.print(std::cout);
    std::cout << "\nThe paper's encrypted paging defeats prefetch "
                 "batching (2 pages/batch); restoring 64-page batches "
                 "would recover most of the UVM KET blowup — the "
                 "per-batch hypercalls and bounce round-trips are "
                 "the tax.\n";

    TextTable o("Oversubscription thrash (2 x 32 MiB in 48 MiB)");
    o.header({"mode", "end-to-end"});
    o.row({"base", formatTime(thrash_base)});
    o.row({"cc", formatTime(thrash_cc)});
    o.print(std::cout);
    std::cout << "\nEviction writes back through D2H — the slow "
                 "direction under CC — so oversubscribed UVM "
                 "workloads pay twice.\n";
    return 0;
}
