/**
 * @file
 * Fig. 10: distribution of Launch and Kernel events over the
 * application lifetime for four representative apps (start time vs
 * duration), base and CC overlaid.  The longest event is dropped for
 * display, as in the paper.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "trace/analysis.hpp"

namespace {

void
scatter(const std::string &app, const char *panel)
{
    using namespace hcc;
    const auto pair = bench::runPair(app);

    std::cout << "\n-- Fig. 10" << panel << ": " << app
              << " (start us, duration us) --\n";
    for (const auto *res : {&pair.base, &pair.cc}) {
        const auto launches = trace::eventScatter(
            res->trace, trace::EventKind::Launch, 1);
        const auto kernels = trace::eventScatter(
            res->trace, trace::EventKind::Kernel, 1);
        const char *mode = res->cc ? "cc" : "base";

        // Print a decimated series (every Nth point) per kind.
        auto dump = [&](const char *kind,
                        const std::vector<trace::EventPoint> &pts) {
            const std::size_t step =
                std::max<std::size_t>(1, pts.size() / 12);
            std::cout << "  " << mode << " " << kind << " ("
                      << pts.size() << " events):";
            for (std::size_t i = 0; i < pts.size(); i += step) {
                std::cout << " (" << TextTable::num(pts[i].start_us, 0)
                          << "," << TextTable::num(
                                 pts[i].duration_us, 1)
                          << ")";
            }
            std::cout << "\n";
        };
        dump("launch", launches);
        dump("kernel", kernels);

        const auto m = res->metrics;
        std::cout << "    KLR = "
                  << TextTable::num(trace::kernelToLaunchRatio(m), 2)
                  << ", end-to-end = " << formatTime(m.end_to_end)
                  << "\n";
    }
}

} // namespace

int
main()
{
    // A: long-KET app (launch overhead hidden by execution).
    scatter("gramschm", "A");
    // B: many kernels with diverse KETs (overhead still hidden).
    scatter("hotspot", "B");
    // C: streamcluster — low KLR, launch dominated.
    scatter("sc", "C");
    // D: 3dconv — iterative single kernel, low KLR.
    scatter("3dconv", "D");

    std::cout << "\nPaper: for A/B, sum(KLO+LQT) hides under long or "
                 "plentiful KETs and end-to-end time barely moves; "
                 "for C/D (low KLR) launches dominate and CC "
                 "stretches the app.\n";
    return 0;
}
