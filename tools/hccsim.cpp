/**
 * @file
 * hccsim: command-line driver of the simulator.  See `hccsim help`.
 */

#include <iostream>
#include <vector>

#include "cli/options.hpp"
#include "common/log.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    const auto opt = hcc::cli::parseArgs(args, error);
    if (!opt) {
        std::cerr << "error: " << error << "\n\n"
                  << hcc::cli::usage();
        return 2;
    }
    try {
        const int rc = hcc::cli::runCli(*opt, std::cout);
        // A trace piped to a full disk must not exit 0 with a
        // truncated file: flush and check the stream state.
        std::cout.flush();
        if (!std::cout) {
            std::cerr << "error: failed writing to stdout\n";
            return 1;
        }
        return rc;
    } catch (const hcc::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
