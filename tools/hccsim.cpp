/**
 * @file
 * hccsim: command-line driver of the simulator.  See `hccsim help`.
 */

#include <iostream>
#include <vector>

#include "cli/options.hpp"
#include "common/log.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    const auto opt = hcc::cli::parseArgs(args, error);
    if (!opt) {
        std::cerr << "error: " << error << "\n\n"
                  << hcc::cli::usage();
        return 2;
    }
    try {
        return hcc::cli::runCli(*opt, std::cout);
    } catch (const hcc::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
